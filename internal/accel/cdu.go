package accel

import (
	"math/bits"

	"jpegact/internal/dct"
	"jpegact/internal/quant"
)

// Accelerator models the JPEG-ACT offload engine: NumCDU compression/
// decompression units fed round-robin from the crossbar, draining through
// the collector into 128 B DMA packets (Figs. 8 and 15).
type Accelerator struct {
	NumCDU int
	Logs   [64]uint8 // SH log-DQT (3-bit entries)
}

// New builds an accelerator with n CDUs and the given DQT snapped to the
// SH unit's power-of-two form.
func New(n int, d quant.DQT) *Accelerator {
	return &Accelerator{NumCDU: n, Logs: d.ShiftLogs()}
}

// PacketBytes is the DMA packet size popped from the collector IFIFO.
const PacketBytes = 128

// Pipeline timing (interconnect cycles), per §III:
//   - the crossbar delivers one 256 B fp32 block per 8 cycles per CDU;
//   - SFPR converts 8 values/cycle (hidden under the load);
//   - the DCT unit takes 4 cycles per pass, two passes;
//   - SH and ZVC take one cycle each;
//   - the collector accepts one block per cycle (8× the per-CDU rate, so
//     it never binds for ≤ 8 CDUs).
const (
	cyclesPerBlockLoad = 8
	pipelineLatency    = 8 + 4 + 4 + 1 + 1 + 1
)

// Stream is a compressed activation stream as it crosses PCIe.
type Stream struct {
	Packets [][]byte // fixed 128 B DMA packets; the last one zero-padded
	Blocks  int
	// Bytes is the true compressed size before packet padding.
	Bytes  int
	Cycles int // compression-side cycles
}

// encodeBlockZVC packs one quantized block in the hardware ZVC format:
// eight mask bytes first (so the splitter can peek the next block's size,
// Fig. 15), then the packed non-zero bytes. Worst case 72 B.
func encodeBlockZVC(q *[64]int8) []byte {
	out := make([]byte, 8, 72)
	for g := 0; g < 8; g++ {
		var mask byte
		for j := 0; j < 8; j++ {
			if q[g*8+j] != 0 {
				mask |= 1 << uint(j)
			}
		}
		out[g] = mask
	}
	for _, v := range q {
		if v != 0 {
			out = append(out, byte(v))
		}
	}
	return out
}

// blockSizeFromMask returns the encoded size given the 8 mask bytes.
func blockSizeFromMask(mask []byte) int {
	n := 8
	for _, m := range mask {
		n += bits.OnesCount8(m)
	}
	return n
}

// decodeBlockZVC reverses encodeBlockZVC.
func decodeBlockZVC(data []byte) [64]int8 {
	var q [64]int8
	p := 8
	for g := 0; g < 8; g++ {
		mask := data[g]
		for j := 0; j < 8; j++ {
			if mask&(1<<uint(j)) != 0 {
				q[g*8+j] = int8(data[p])
				p++
			}
		}
	}
	return q
}

// sfprQuantize converts one value with the per-channel scale, saturating
// like the SPE cast (§III-B).
func sfprQuantize(v, sc float32) int8 {
	f := float64(v) * float64(sc) * 128
	var q int32
	if f >= 0 {
		q = int32(f + 0.5)
	} else {
		q = int32(f - 0.5)
	}
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return int8(q)
}

// compressBlock runs one 8×8 fp32 block through SFPR → fixed-point DCT →
// SH → ZVC, returning the encoded bytes and the quantized block.
func (a *Accelerator) compressBlock(blk *[64]float32, sc float32) ([]byte, [64]int8) {
	var codes [64]int8
	for i, v := range blk {
		codes[i] = sfprQuantize(v, sc)
	}
	return a.compressCodeBlock(&codes)
}

// compressCodeBlock runs one block of SFPR codes (the alignment-buffer
// contents) through the DCT → SH → ZVC stages.
func (a *Accelerator) compressCodeBlock(codes *[64]int8) ([]byte, [64]int8) {
	var ib dct.IntBlock
	for i, v := range codes {
		ib[i] = int32(v)
	}
	dct.FixedForward8x8(&ib)
	var q [64]int8
	quant.ShiftQuantize((*[64]int32)(&ib), &a.Logs, &q)
	return encodeBlockZVC(&q), q
}

// decompressBlock inverts compressBlock (up to quantization loss).
func (a *Accelerator) decompressBlock(q *[64]int8, sc float32) [64]float32 {
	var coef [64]int32
	quant.ShiftDequantize(q, &a.Logs, &coef)
	ib := dct.IntBlock(coef)
	dct.FixedInverse8x8(&ib)
	var out [64]float32
	var inv float32
	if sc != 0 {
		inv = 1 / (sc * 128)
	}
	for i, v := range ib {
		if v > 127 {
			v = 127
		}
		if v < -128 {
			v = -128
		}
		out[i] = float32(v) * inv
	}
	return out
}

// Compress runs the blocks (all sharing one SFPR channel scale) through
// the CDUs and collector, producing the DMA packet stream and the cycle
// count. Blocks are distributed round-robin across CDUs and collected in
// the same deterministic order (§III-G).
func (a *Accelerator) Compress(blocks [][64]float32, sc float32) *Stream {
	coded := make([][]byte, len(blocks))
	for bi := range blocks {
		coded[bi], _ = a.compressBlock(&blocks[bi], sc)
	}
	return a.collect(coded)
}

// CompressCodes runs blocks of already-SFPR-quantized int8 codes through
// the DCT → SH → ZVC stages and the collector. This is the entry the
// multi-channel offload path uses: SFPR runs per channel upstream and the
// alignment buffer contents may straddle channel boundaries.
func (a *Accelerator) CompressCodes(blocks [][64]int8) *Stream {
	coded := make([][]byte, len(blocks))
	for bi := range blocks {
		coded[bi], _ = a.compressCodeBlock(&blocks[bi])
	}
	return a.collect(coded)
}

// collect marshals per-block encodings through the collector IFIFO into
// 128 B packets.
func (a *Accelerator) collect(coded [][]byte) *Stream {
	s := &Stream{Blocks: len(coded)}
	ifuifo := NewByteFIFO(256)
	for bi := range coded {
		enc := coded[bi]
		// The IFIFO pops a 128 B packet whenever full enough; pushes of up
		// to 72 B always fit a 256 B FIFO drained at 128 B granularity.
		for !ifuifo.CanPush(len(enc)) {
			s.Packets = append(s.Packets, mustPop(ifuifo, PacketBytes))
		}
		ifuifo.Push(enc)
		s.Bytes += len(enc)
		for ifuifo.Len() >= PacketBytes {
			s.Packets = append(s.Packets, mustPop(ifuifo, PacketBytes))
		}
	}
	// Flush the tail as a padded packet.
	if n := ifuifo.Len(); n > 0 {
		tail, _ := ifuifo.Pop(n)
		padded := make([]byte, PacketBytes)
		copy(padded, tail)
		s.Packets = append(s.Packets, padded)
	}
	s.Cycles = a.cycles(len(coded))
	return s
}

func mustPop(f *ByteFIFO, n int) []byte {
	b, err := f.Pop(n)
	if err != nil {
		panic(err)
	}
	return b
}

// cycles returns the pipeline time for n blocks: the crossbar load rate
// (8 cycles per block per CDU) plus the fill latency. The collector's one
// block/cycle drain never binds for ≤ 8 CDUs.
func (a *Accelerator) cycles(n int) int {
	if n == 0 {
		return 0
	}
	c := a.NumCDU
	if c < 1 {
		c = 1
	}
	perCDU := (n + c - 1) / c
	return perCDU*cyclesPerBlockLoad + pipelineLatency
}

// DecompressCodes splits the packet stream back into quantized blocks and
// inverts the SH and DCT stages, returning recovered int8 code blocks —
// the inverse of CompressCodes.
func (a *Accelerator) DecompressCodes(s *Stream) ([][64]int8, int) {
	out := make([][64]int8, 0, s.Blocks)
	for _, q := range a.split(s) {
		var coef [64]int32
		quant.ShiftDequantize(&q, &a.Logs, &coef)
		ib := dct.IntBlock(coef)
		dct.FixedInverse8x8(&ib)
		var rec [64]int8
		for i, v := range ib {
			if v > 127 {
				v = 127
			}
			if v < -128 {
				v = -128
			}
			rec[i] = int8(v)
		}
		out = append(out, rec)
	}
	return out, a.cycles(s.Blocks)
}

// split walks the packet stream through the splitter OFIFO, yielding the
// quantized blocks in order.
func (a *Accelerator) split(s *Stream) [][64]int8 {
	ofifo := NewByteFIFO(256)
	next := 0
	out := make([][64]int8, 0, s.Blocks)
	for len(out) < s.Blocks {
		for {
			if mask, err := ofifo.Peek(8); err == nil {
				if ofifo.Len() >= blockSizeFromMask(mask) {
					break
				}
			}
			if next >= len(s.Packets) {
				panic("accel: packet stream exhausted mid-block")
			}
			ofifo.Push(s.Packets[next])
			next++
		}
		mask, _ := ofifo.Peek(8)
		data := mustPop(ofifo, blockSizeFromMask(mask))
		out = append(out, decodeBlockZVC(data))
	}
	return out
}

// Decompress splits the packet stream back into blocks (peeking each
// block's mask to size the pop, as the splitter OFIFO does) and runs the
// decompression pipeline, returning recovered fp32 blocks and cycles.
func (a *Accelerator) Decompress(s *Stream, sc float32) ([][64]float32, int) {
	out := make([][64]float32, 0, s.Blocks)
	for _, q := range a.split(s) {
		q := q
		out = append(out, a.decompressBlock(&q, sc))
	}
	return out, a.cycles(s.Blocks)
}

// Ratio returns the stream's compression ratio against fp32 storage.
func (s *Stream) Ratio() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.Blocks*64*4) / float64(s.Bytes)
}

// ThroughputBytesPerCycle returns the uncompressed ingest rate achieved.
func (s *Stream) ThroughputBytesPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Blocks*64*4) / float64(s.Cycles)
}
