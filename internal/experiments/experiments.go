// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index of DESIGN.md). Each experiment is
// a named runner that produces a formatted table; cmd/actbench and the
// repository-root benchmarks both dispatch through Run.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Options controls experiment scale. Quick mode shrinks training lengths
// and sample counts so a full sweep finishes in CI time; full mode uses
// the sizes the committed EXPERIMENTS.md numbers were generated with.
type Options struct {
	Quick bool
	Seed  uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the result as a fixed-width text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner regenerates one experiment.
type Runner func(Options) *Result

var registry = map[string]struct {
	title string
	run   Runner
}{}

func register(id, title string, run Runner) {
	registry[id] = struct {
		title string
		run   Runner
	}{title, run}
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.run(o), nil
}

// Title returns the experiment title.
func Title(id string) string { return registry[id].title }

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }
