package experiments

import (
	"jpegact/internal/data"
	"jpegact/internal/entropy"
	"jpegact/internal/tensor"
)

func init() {
	register("fig2", "Frequency entropy distribution: images vs dense activations", runFig2)
	register("fig6", "Per-layer spatial vs frequency entropy of conv activations", runFig6)
}

func runFig2(o Options) *Result {
	res := &Result{
		ID:     "fig2",
		Title:  Title("fig2"),
		Header: []string{"source", "freq band", "mean entropy (bits)"},
		Notes: []string{
			"images: energy (and entropy) falls steeply with frequency",
			"activations: flatter profile with information in mid/high bands — the Fig. 2 insight",
		},
	}
	// Images: smooth natural-image-like textures.
	r := tensor.NewRNG(o.seed())
	img := tensor.New(2, 3, 32, 32)
	plane := 32 * 32
	for i := 0; i < 6; i++ {
		copy(img.Data[i*plane:(i+1)*plane], data.Texture(r, 32, 32, 6))
	}
	imgA := entropy.Analyze(img, 1.0)

	// Activations: harvested dense conv outputs of the trained network.
	acts := denseActs(harvest(o, 3))
	var actA entropy.Analysis
	if len(acts) > 0 {
		// Average the per-frequency entropies over all harvested tensors.
		for _, x := range acts {
			a := entropy.Analyze(x, 1.125)
			actA.Spatial += a.Spatial
			actA.Frequency += a.Frequency
			for i := range a.PerFrequency {
				actA.PerFrequency[i] += a.PerFrequency[i]
			}
		}
		n := float64(len(acts))
		actA.Spatial /= n
		actA.Frequency /= n
		for i := range actA.PerFrequency {
			actA.PerFrequency[i] /= n
		}
	}

	band := func(a entropy.Analysis, lo, hi int) float64 {
		var sum float64
		n := 0
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				if d := r + c; d >= lo && d <= hi {
					sum += a.PerFrequency[r*8+c]
					n++
				}
			}
		}
		return sum / float64(n)
	}
	for _, src := range []struct {
		name string
		a    entropy.Analysis
	}{{"images", imgA}, {"activations", actA}} {
		res.Rows = append(res.Rows,
			[]string{src.name, "low (d0-2)", f("%.2f", band(src.a, 0, 2))},
			[]string{src.name, "mid (d3-7)", f("%.2f", band(src.a, 3, 7))},
			[]string{src.name, "high (d8-14)", f("%.2f", band(src.a, 8, 14))},
		)
	}
	return res
}

func runFig6(o Options) *Result {
	res := &Result{
		ID:     "fig6",
		Title:  Title("fig6"),
		Header: []string{"layer", "depth", "spatial H", "frequency H", "gain"},
		Notes: []string{
			"dense conv/sum activations of the trained mini ResNet50",
			"frequency entropy below spatial entropy ⇒ the frequency domain is the more compact representation (Fig. 6)",
		},
	}
	for _, h := range harvest(o, 3) {
		sh := h.T.Shape
		if sh.N*sh.C*sh.H < 8 || sh.W < 8 {
			continue
		}
		a := entropy.Analyze(h.T, 1.125)
		res.Rows = append(res.Rows, []string{
			h.Name, f("%d", h.Depth),
			f("%.2f", a.Spatial), f("%.2f", a.Frequency), f("%+.2f", a.Gain()),
		})
	}
	return res
}
