package experiments

import (
	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
	"jpegact/internal/train"
)

func init() {
	register("table1", "Compression rate trade-offs (accuracy/PSNR and ratio per network × method)", runTable1)
	register("fig1b", "Compression ratios and error change on the ResNet workload", runFig1b)
	register("fig19", "Activation footprint breakdown by activation type", runFig19)
	register("table2", "Compression selection by activation type (policy matrix)", runTable2)
	register("table3", "conv+sum compression for DQT × back-end combinations", runTable3)
}

func trainCfg(o Options, m compress.Method) train.Config {
	cfg := train.Config{
		Method: m, Epochs: 8, BatchesPerEpoch: 8, BatchSize: 8,
		LR: 0.05, MeasureError: true,
	}
	if o.Quick {
		cfg.Epochs = 2
		cfg.BatchesPerEpoch = 4
	}
	return cfg
}

func classDS(o Options) *data.Classification {
	return data.NewClassification(data.ClassificationConfig{
		Classes: 4, Channels: 3, H: 16, W: 16, Noise: 0.6, Seed: o.seed(),
	})
}

func modelSet(o Options) []*models.Model {
	sc := models.Scale{Width: 8, Blocks: 1}
	all := models.All(sc, 4, o.seed())
	if !o.Quick {
		return all
	}
	// Quick mode: one plain net, one bottleneck net, and VDSR.
	var out []*models.Model
	for _, m := range all {
		switch m.Name {
		case "VGG", "ResNet50", "VDSR":
			out = append(out, m)
		}
	}
	return out
}

func methodSet(o Options) []compress.Method {
	ms := compress.Standard()
	if !o.Quick {
		return ms
	}
	// Quick mode: baseline, GIST, SFPR, JPEG-ACT/optL5H.
	return []compress.Method{ms[0], ms[2], ms[3], ms[8]}
}

// runOne trains one (model, method) pair from a fresh copy of the model.
func runOne(o Options, name string, meth compress.Method) train.Report {
	// Rebuild the model fresh so every method starts from identical
	// weights (same seed).
	sc := models.Scale{Width: 8, Blocks: 1}
	var m *models.Model
	rng := tensor.NewRNG(o.seed())
	switch name {
	case "VGG":
		m = models.VGG(sc, 4, rng)
	case "ResNet18":
		m = models.ResNet18(sc, 4, rng)
	case "ResNet50":
		m = models.ResNet50(sc, 4, rng)
	case "ResNet101":
		m = models.ResNet101(sc, 4, rng)
	case "WRN":
		m = models.WRN(sc, 4, rng)
	case "VDSR":
		m = models.VDSR(sc, rng)
	default:
		panic("unknown model " + name)
	}
	cls := classDS(o)
	sr := data.NewSuperRes(16, 16, o.seed())
	cfg := trainCfg(o, meth)
	if m.Task == models.SuperRes {
		cfg.LR = 0.01
	}
	if name == "ResNet101" {
		cfg.LR = 0.03 // the deepest mini net needs a gentler step at this scale
	}
	return train.Run(m, cls, sr, cfg)
}

func runTable1(o Options) *Result {
	res := &Result{
		ID:     "table1",
		Title:  Title("table1"),
		Header: []string{"model", "method", "score", "Δbaseline", "ratio", "diverged"},
		Notes: []string{
			"score = top-1 validation accuracy for classifiers, PSNR(dB) for VDSR",
			"mini networks on synthetic data (DESIGN.md substitutions 2–3); compare shapes, not absolute values",
		},
	}
	for _, m := range modelSet(o) {
		var baseline float64
		for _, meth := range methodSet(o) {
			rep := runOne(o, m.Name, meth)
			if meth.Name() == "baseline" {
				baseline = rep.BestScore
			}
			div := ""
			if rep.Diverged {
				div = "*"
			}
			res.Rows = append(res.Rows, []string{
				m.Name, meth.Name(),
				f("%.3f", rep.BestScore),
				f("%+.3f", rep.BestScore-baseline),
				f("%.1fx", rep.FinalRatio),
				div,
			})
		}
	}
	return res
}

func runFig1b(o Options) *Result {
	res := &Result{
		ID:     "fig1b",
		Title:  Title("fig1b"),
		Header: []string{"method", "avg ratio", "score change"},
	}
	methods := []compress.Method{
		compress.Baseline{}, // vDNN: offload, no compression
		compress.CDMAPlus{},
		compress.GIST{},
		compress.NewJPEGAct(quant.OptL5H()),
	}
	var baseline float64
	for i, meth := range methods {
		rep := runOne(o, "ResNet50", meth)
		if i == 0 {
			baseline = rep.BestScore
		}
		label := meth.Name()
		if i == 0 {
			label = "vDNN"
		}
		res.Rows = append(res.Rows, []string{
			label, f("%.1fx", rep.FinalRatio), f("%+.1f%%", 100*(rep.BestScore-baseline)),
		})
	}
	return res
}

func runFig19(o Options) *Result {
	res := &Result{
		ID:     "fig19",
		Title:  Title("fig19"),
		Header: []string{"model", "method", "kind", "orig MB/iter", "compr MB/iter", "share"},
	}
	meths := []compress.Method{
		compress.CDMAPlus{}, compress.GIST{}, compress.NewJPEGAct(quant.OptL5H()),
	}
	names := []string{"VGG", "ResNet50"}
	if o.Quick {
		names = []string{"ResNet50"}
		meths = meths[1:]
	}
	for _, name := range names {
		for _, meth := range meths {
			rep := runOne(o, name, meth)
			var total int
			for _, fe := range rep.Footprint {
				total += fe.OriginalBytes
			}
			for _, fe := range rep.Footprint {
				res.Rows = append(res.Rows, []string{
					name, meth.Name(), fe.Kind.String(),
					f("%.3f", float64(fe.OriginalBytes)/1e6),
					f("%.3f", float64(fe.CompressedBytes)/1e6),
					f("%.0f%%", 100*float64(fe.OriginalBytes)/float64(total)),
				})
			}
		}
	}
	return res
}

func runTable2(o Options) *Result {
	res := &Result{
		ID:     "table2",
		Title:  Title("table2"),
		Header: []string{"method", "conv/sum", "ReLU(to other)", "ReLU(to conv)", "pool/dropout"},
		Notes:  []string{"JPEG applies to conv/sum only when the reshaped activation is ≥ 8×8 (else SFPR)"},
	}
	kinds := []compress.Kind{
		compress.KindConv, compress.KindReLUToOther,
		compress.KindReLUToConv, compress.KindPoolDropout,
	}
	for _, m := range compress.Standard() {
		row := []string{m.Name()}
		for _, k := range kinds {
			row = append(row, compress.PolicyFor(m, k))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runTable3(o Options) *Result {
	res := &Result{
		ID:     "table3",
		Title:  Title("table3"),
		Header: []string{"back end", "jpeg80", "jpeg60", "optL", "optH", "optL5H"},
		Notes: []string{
			"conv+sum compression ratio on activations harvested from the trained mini ResNet50",
			"optL5H reported with the late-phase (optH) table, as after epoch 5",
		},
	}
	acts := denseActs(harvest(o, 5))
	tables := []quant.DQT{
		quant.JPEGQuality(80), quant.JPEGQuality(60),
		quant.OptL(), quant.OptH(), quant.OptH(), // optL5H late phase = optH
	}
	backends := []struct {
		name                 string
		shift, zvc, adaptive bool
	}{
		{"DIV+RLE", false, false, false},
		{"SH+RLE", true, false, false},
		{"DIV+ZVC", false, true, false},
		{"SH+ZVC", true, true, false},
		{"DIV+aRLE*", false, false, true}, // extension: adaptive tables
	}
	for _, be := range backends {
		row := []string{be.name}
		for _, d := range tables {
			var orig, comp int
			for _, x := range acts {
				p := compress.Pipeline{DQT: d, UseShift: be.shift, UseZVC: be.zvc, Adaptive: be.adaptive}
				_, bytes := p.Roundtrip(x)
				orig += x.Bytes()
				comp += bytes
			}
			row = append(row, f("%.2f", float64(orig)/float64(comp)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, "DIV+aRLE* is a software-only extension: per-tensor canonical Huffman tables")
	return res
}
