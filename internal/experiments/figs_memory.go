package experiments

import "jpegact/internal/memory"

func init() {
	register("memory", "Full-scale activation storage and compressed footprint (intro motivation)", runMemory)
}

func runMemory(o Options) *Result {
	res := &Result{
		ID:     "memory",
		Title:  Title("memory"),
		Header: []string{"network", "batch", "fp32 GB", "cDMA+ GB", "GIST GB", "SFPR GB", "JPEG-ACT GB"},
		Notes: []string{
			"full-scale shape inventories (real network dimensions), forward saved tensors only",
			"the paper's motivation: ResNet50/ImageNet exceeds a 12 GB Titan V long before production batch sizes",
		},
	}
	const gb = float64(1 << 30)
	batches := []int{64, 256}
	if o.Quick {
		batches = []int{64}
	}
	for _, n := range memory.All() {
		for _, b := range batches {
			row := []string{n.Name, f("%d", b), f("%.1f", float64(n.TotalBytes(b))/gb)}
			for _, m := range []string{"cDMA+", "GIST", "SFPR", "JPEG-ACT"} {
				row = append(row, f("%.1f", float64(n.CompressedBytes(b, memory.MethodRatios(m)))/gb))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}
