package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"capacity", "divergence", "fig10", "fig16", "fig17", "fig18",
		"fig19", "fig1a", "fig1b", "fig2", "fig20", "fig21", "fig6",
		"memory", "table1", "table2", "table3", "table4", "table5", "tta",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := r.String()
	for _, frag := range []string{"== x: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("missing %q in %q", frag, s)
		}
	}
}

func TestHarvestProducesDenseActs(t *testing.T) {
	hs := harvest(quick(), 2)
	if len(hs) < 5 {
		t.Fatalf("harvested only %d refs", len(hs))
	}
	dense := denseActs(hs)
	if len(dense) < 3 {
		t.Fatalf("dense activations %d", len(dense))
	}
}

func cell(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(r.Rows[row][col], "%"), "x"), "dB")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func TestFig2ActivationsFlatterThanImages(t *testing.T) {
	r, err := Run("fig2", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: images low/mid/high then activations low/mid/high.
	imgLow, imgHigh := cell(t, r, 0, 2), cell(t, r, 2, 2)
	actLow, actHigh := cell(t, r, 3, 2), cell(t, r, 5, 2)
	if imgLow <= imgHigh {
		t.Fatalf("image spectrum must fall: low %v high %v", imgLow, imgHigh)
	}
	// Flatness: activation high/low ratio must exceed the image one.
	if actHigh/actLow <= imgHigh/imgLow {
		t.Fatalf("activations not flatter: img %v/%v act %v/%v", imgHigh, imgLow, actHigh, actLow)
	}
}

func TestFig6FrequencyGain(t *testing.T) {
	r, err := Run("fig6", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	positive := 0
	for i := range r.Rows {
		if cell(t, r, i, 4) > 0 {
			positive++
		}
	}
	if positive*2 < len(r.Rows) {
		t.Fatalf("frequency gain positive on only %d/%d layers", positive, len(r.Rows))
	}
}

func TestFig10ValleyShape(t *testing.T) {
	r, err := Run("fig10", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode rows: S = 0.5, 1.125, 4.0. For the JPEG pipelines the
	// valley sits at S = 1.125 (Fig. 10: truncation error grows at small S
	// once DCT quantization follows); SFPR alone is flat at small S, so
	// there we only require heavy clipping (S = 4) to be the worst point.
	for col := 2; col <= 3; col++ {
		lo, mid, hi := cell(t, r, 0, col), cell(t, r, 1, col), cell(t, r, 2, col)
		if !(mid < lo && mid < hi) {
			t.Fatalf("col %d: S landscape not a valley: %v %v %v", col, lo, mid, hi)
		}
	}
	if !(cell(t, r, 2, 1) > cell(t, r, 1, 1)) {
		t.Fatal("SFPR at S=4 must be worse than at S=1.125")
	}
}

func TestFig21MoreCDUsHelpOnlyAtHighRatio(t *testing.T) {
	r, err := Run("fig21", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = 2x: col 4 (8 CDU) ≈ col 1 (1 CDU).
	if v := cell(t, r, 0, 4); v > 1.05 {
		t.Fatalf("2x ratio speedup with 8 CDUs = %v, want ~1", v)
	}
	// Row 3 = 12x: 8 CDUs clearly faster than 1.
	if v := cell(t, r, 3, 4); v < 1.1 {
		t.Fatalf("12x ratio speedup with 8 CDUs = %v, want > 1.1", v)
	}
}

func TestFig20JPEGActWins(t *testing.T) {
	r, err := Run("fig20", quick())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range r.Rows {
		if row[0] == "VDSR" {
			continue // compute-bound, all methods ≈ 1
		}
		act := cell(t, r, i, 5)
		cdma := cell(t, r, i, 1)
		if act <= cdma {
			t.Fatalf("%s: JPEG-ACT %v not above cDMA+ %v", row[0], act, cdma)
		}
		if act < 1.5 {
			t.Fatalf("%s: JPEG-ACT relative perf %v too low", row[0], act)
		}
	}
}

func TestTable2PolicyShape(t *testing.T) {
	r, err := Run("table2", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[0] == "JPEG-ACT/optL5H" {
			if row[1] != "SFPR+DCT+SH+ZVC" || row[2] != "BRC" {
				t.Fatalf("JPEG-ACT policy row wrong: %v", row)
			}
		}
	}
}

func TestTable3OptHCompressesMost(t *testing.T) {
	r, err := Run("table3", quick())
	if err != nil {
		t.Fatal(err)
	}
	// In every back-end row, optH (col 4) > optL (col 3).
	for i := range r.Rows {
		if cell(t, r, i, 4) <= cell(t, r, i, 3) {
			t.Fatalf("row %v: optH must beat optL", r.Rows[i])
		}
	}
	// The shipped JPEG-ACT cell (SH+ZVC × optH) compresses ≥ 4× (beats
	// plain SFPR).
	if v := cell(t, r, 3, 4); v < 4 {
		t.Fatalf("SH+ZVC optH ratio %v", v)
	}
}

func TestTable4And5(t *testing.T) {
	r4, err := Run("table4", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r4.Rows) != 7 {
		t.Fatalf("table4 rows %d", len(r4.Rows))
	}
	r5, err := Run("table5", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r5.Rows) != 4 {
		t.Fatalf("table5 rows %d", len(r5.Rows))
	}
	// Every design under 1% of GPU area/power.
	for i := range r5.Rows {
		if cell(t, r5, i, 5) >= 1 || cell(t, r5, i, 6) >= 1 {
			t.Fatalf("design %s exceeds 1%% GPU budget", r5.Rows[i][0])
		}
	}
}

func TestFig1bShape(t *testing.T) {
	r, err := Run("fig1b", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// Ratios must increase from vDNN to JPEG-ACT.
	if !(cell(t, r, 0, 1) < cell(t, r, 2, 1) && cell(t, r, 2, 1) < cell(t, r, 3, 1)) {
		t.Fatalf("ratio ordering wrong: %v", r.Rows)
	}
}

func TestCapacityShape(t *testing.T) {
	r, err := Run("capacity", quick())
	if err != nil {
		t.Fatal(err)
	}
	// vDNN stalls grow as capacity shrinks; JPEG-ACT stalls stay at or
	// below vDNN's everywhere.
	prev := -1.0
	for i := range r.Rows {
		v := cell(t, r, i, 1)
		a := cell(t, r, i, 2)
		if a > v+1e-9 {
			t.Fatalf("row %d: JPEG-ACT stall %v above vDNN %v", i, a, v)
		}
		if prev >= 0 && v < prev-1e-9 {
			t.Fatalf("vDNN stalls not monotone: %v after %v", v, prev)
		}
		prev = v
	}
	// GIST stops fitting at the tightest capacity.
	if r.Rows[len(r.Rows)-1][3] != "false" {
		t.Fatalf("GIST should not fit at 10%% capacity: %v", r.Rows[len(r.Rows)-1])
	}
}

func TestMemoryShape(t *testing.T) {
	r, err := Run("memory", quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		base := cell(t, r, i, 2)
		act := cell(t, r, i, 6)
		if act >= base {
			t.Fatalf("row %v: JPEG-ACT footprint not smaller", r.Rows[i])
		}
	}
}

func TestFig1aRenders(t *testing.T) {
	r, err := Run("fig1a", quick())
	if err != nil {
		t.Fatal(err)
	}
	var sawCompute, sawMemcpy bool
	for _, row := range r.Rows {
		if strings.Contains(row[0], "#") {
			sawCompute = true
		}
		if strings.Contains(row[0], "=") {
			sawMemcpy = true
		}
	}
	if !sawCompute || !sawMemcpy {
		t.Fatalf("gantt missing stream marks")
	}
}
