package experiments

import (
	"jpegact/internal/compress"
	"jpegact/internal/quant"
)

func init() {
	register("divergence", "Training under increasing quantization strength, fixed vs annealed DQT", runDivergence)
}

// runDivergence extends the paper's §VI-B divergence observations (the
// Table I asterisks and the optL5H rescue): train the mini ResNet under
// progressively stronger uniform DQTs, once from epoch 0 and once with a
// gentle first-five-epochs annealing phase, and report where training
// breaks down and whether annealing rescues it.
func runDivergence(o Options) *Result {
	res := &Result{
		ID:     "divergence",
		Title:  Title("divergence"),
		Header: []string{"AC divisor", "fixed score", "annealed score", "fixed Δ", "annealed Δ"},
		Notes: []string{
			"uniform DQTs of increasing strength on the mini ResNet50; annealed = optL for 5 epochs then the strong table (the optL5H mechanism)",
			"at full scale the breakdown appears as hard divergence (Table I asterisks); at mini scale it appears as accuracy collapse, which annealing mitigates",
		},
	}
	base := runOne(o, "ResNet50", compress.Baseline{})
	strengths := []float64{32, 96, 255}
	if o.Quick {
		strengths = []float64{255}
	}
	for _, div := range strengths {
		strong := quant.Uniform(f("crush%d", int(div)), 64, div)
		fixed := runOne(o, "ResNet50", compress.NewJPEGAct(quant.Fixed(strong)))
		annealed := runOne(o, "ResNet50", compress.NewJPEGAct(quant.Schedule{
			Name: f("optL5crush%d", int(div)), Early: quant.OptL(), Late: strong, SwitchAt: 5,
		}))
		mark := func(r float64, diverged bool) string {
			s := f("%+.3f", r-base.BestScore)
			if diverged {
				s += "*"
			}
			return s
		}
		res.Rows = append(res.Rows, []string{
			f("%.0f", div),
			f("%.3f", fixed.BestScore),
			f("%.3f", annealed.BestScore),
			mark(fixed.BestScore, fixed.Diverged),
			mark(annealed.BestScore, annealed.Diverged),
		})
	}
	return res
}
