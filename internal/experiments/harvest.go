package experiments

import (
	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/tensor"
	"jpegact/internal/train"
)

// Harvested is one saved activation captured from a live training run —
// the "example activations from a generator network" of §IV.
type Harvested struct {
	Name  string
	Depth int // position in forward order
	Kind  compress.Kind
	T     *tensor.Tensor
}

// harvest trains a mini ResNet (the paper's generator is ResNet50 trained
// for 5 epochs) with no compression, then captures every unique saved
// activation from one final forward pass.
func harvest(o Options, epochs int) []Harvested {
	sc := models.Scale{Width: 8, Blocks: 1}
	batches, batch := 8, 8
	if o.Quick {
		epochs = min(epochs, 2)
		batches = 4
	}
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 4, Channels: 3, H: 16, W: 16, Noise: 0.4, Seed: o.seed(),
	})
	m := models.ResNet50(sc, 4, tensor.NewRNG(o.seed()))
	train.Classifier(m, ds, train.Config{
		Method: compress.Baseline{}, Epochs: epochs,
		BatchesPerEpoch: batches, BatchSize: batch, LR: 0.05,
	})
	x, _ := ds.Batch(batch)
	m.Net.Forward(refOf(x), true)
	seen := map[*nn.ActRef]bool{}
	var out []Harvested
	for _, ref := range m.Net.SavedRefs() {
		if seen[ref] || ref.T == nil {
			continue
		}
		seen[ref] = true
		out = append(out, Harvested{
			Name: ref.Name, Depth: len(out), Kind: ref.Kind, T: ref.T.Clone(),
		})
	}
	return out
}

// denseActs filters harvested activations to the dense conv/sum kind that
// the JPEG pipeline targets, keeping only JPEG-applicable shapes.
func denseActs(hs []Harvested) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, h := range hs {
		sh := h.T.Shape
		if h.Kind == compress.KindConv && sh.N*sh.C*sh.H >= 8 && sh.W >= 8 {
			out = append(out, h.T)
		}
	}
	return out
}

// refOf wraps a tensor as a network input ref.
func refOf(x *tensor.Tensor) *nn.ActRef {
	return &nn.ActRef{Name: "input", Kind: compress.KindConv, T: x}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
