package experiments

import (
	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
	"jpegact/internal/train"

	"jpegact/internal/dqtopt"
)

func init() {
	register("fig10", "Scaling factor landscape: recovered error vs S", runFig10)
	register("fig16", "Rate/distortion trade-off: SFPR bits, image DQTs, optimized DQTs", runFig16)
	register("fig17", "Activation error and entropy over training epochs per DQT", runFig17)
}

func runFig10(o Options) *Result {
	res := &Result{
		ID:     "fig10",
		Title:  Title("fig10"),
		Header: []string{"S", "SFPR", "SFPR+DCT+DIV+RLE(jpeg80)", "SFPR+DCT+SH+ZVC(optH)"},
		Notes: []string{
			"recovered-activation L2 error on harvested conv+sum activations",
			"error rises at small S (truncation) and large S (clipping); S=1.125 sits in the flat valley",
		},
	}
	acts := denseActs(harvest(o, 5))
	svals := []float64{0.25, 0.5, 0.75, 1.0, 1.125, 1.25, 1.5, 2.0, 4.0}
	if o.Quick {
		svals = []float64{0.5, 1.125, 4.0}
	}
	for _, s := range svals {
		var eSFPR, eBase, eAct float64
		for _, x := range acts {
			rec, _ := sfpr.Roundtrip(x, s)
			eSFPR += tensor.L2Error(x, rec)
			pb := compress.Pipeline{DQT: quant.JPEGQuality(80), S: s}
			rb, _ := pb.Roundtrip(x)
			eBase += tensor.L2Error(x, rb)
			pa := compress.Pipeline{DQT: quant.OptH(), UseShift: true, UseZVC: true, S: s}
			ra, _ := pa.Roundtrip(x)
			eAct += tensor.L2Error(x, ra)
		}
		n := float64(len(acts))
		res.Rows = append(res.Rows, []string{
			f("%.3f", s), f("%.2e", eSFPR/n), f("%.2e", eBase/n), f("%.2e", eAct/n),
		})
	}
	return res
}

func runFig16(o Options) *Result {
	res := &Result{
		ID:     "fig16",
		Title:  Title("fig16"),
		Header: []string{"point", "entropy (bits/value)", "L2 error"},
		Notes: []string{
			"harvested conv+sum activations; lower-left dominates",
			"optimized DQTs sit below the image-DQT curve (≈1 bit less at matched error, §IV)",
		},
	}
	acts := denseActs(harvest(o, 5))
	tables := []quant.DQT{
		quant.JPEGQuality(40), quant.JPEGQuality(60),
		quant.JPEGQuality(80), quant.JPEGQuality(90),
		quant.OptL(), quant.OptH(),
	}
	bits := []uint{2, 3, 4}
	if o.Quick {
		tables = tables[2:]
		bits = []uint{3}
	}
	for _, p := range dqtopt.RateDistortion(acts, tables, bits, sfpr.DefaultS) {
		res.Rows = append(res.Rows, []string{p.Name, f("%.3f", p.Entropy), f("%.2e", p.L2)})
	}
	// Alpha sweep: optimize from a uniform seed at several α.
	alphas := []float64{0.001, 0.005, 0.01, 0.025}
	iters := 5
	if o.Quick {
		alphas = []float64{0.005}
		iters = 2
	}
	for _, a := range alphas {
		r := dqtopt.Optimize(quant.Uniform("seed", 8, 16), acts, dqtopt.Config{
			Alpha: a, Iters: iters, Grouped: true, S: sfpr.DefaultS,
		})
		pt := r.Trace[len(r.Trace)-1]
		res.Rows = append(res.Rows, []string{
			f("opt(α=%.3f)", a), f("%.3f", pt.Entropy), f("%.2e", pt.L2),
		})
	}
	return res
}

func runFig17(o Options) *Result {
	res := &Result{
		ID:     "fig17",
		Title:  Title("fig17"),
		Header: []string{"epoch", "DQT", "L2 error", "entropy (bits)"},
		Notes: []string{
			"each DQT evaluated on activation snapshots along a baseline training run",
			"error is highest in the first epochs (weight decay), then stabilizes — the motivation for optL5H",
		},
	}
	epochs := []int{0, 1, 3, 5, 8}
	trainBatches := 8
	if o.Quick {
		epochs = []int{0, 2}
		trainBatches = 4
	}
	tables := []quant.DQT{quant.JPEGQuality(80), quant.OptL(), quant.OptH()}

	// One continuous training run; snapshot activations at chosen epochs.
	sc := models.Scale{Width: 8, Blocks: 1}
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 4, Channels: 3, H: 16, W: 16, Noise: 0.4, Seed: o.seed(),
	})
	m := models.ResNet50(sc, 4, tensor.NewRNG(o.seed()))
	last := 0
	for _, ep := range epochs {
		if ep > last {
			train.Classifier(m, ds, train.Config{
				Method: compress.Baseline{}, Epochs: ep - last,
				BatchesPerEpoch: trainBatches, BatchSize: 8, LR: 0.05,
			})
			last = ep
		}
		acts := snapshotActs(m, ds)
		for _, d := range tables {
			pt := dqtopt.Evaluate(d, acts, 0, sfpr.DefaultS)
			res.Rows = append(res.Rows, []string{
				f("%d", ep), d.Name, f("%.2e", pt.L2), f("%.3f", pt.Entropy),
			})
		}
	}
	return res
}

// snapshotActs captures current dense activations of a model.
func snapshotActs(m *models.Model, ds *data.Classification) []*tensor.Tensor {
	x, _ := ds.Batch(8)
	m.Net.Forward(refOf(x), true)
	var hs []Harvested
	seen := map[interface{}]bool{}
	for _, ref := range m.Net.SavedRefs() {
		if seen[ref] || ref.T == nil {
			continue
		}
		seen[ref] = true
		hs = append(hs, Harvested{Name: ref.Name, Kind: ref.Kind, T: ref.T.Clone()})
	}
	return denseActs(hs)
}
