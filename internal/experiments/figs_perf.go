package experiments

import (
	"math"
	"strings"

	"jpegact/internal/compress"
	"jpegact/internal/gpusim"
	"jpegact/internal/hw"
	"jpegact/internal/quant"
)

func init() {
	register("fig18", "Accuracy loss vs relative speedup", runFig18)
	register("fig20", "Relative performance to vDNN per network", runFig20)
	register("fig21", "Performance vs CDU count at fixed compression ratios", runFig21)
	register("table4", "JPEG-ACT synthesis by component", runTable4)
	register("table5", "Design comparison: power, area, compression, offload", runTable5)
}

// perfSchemes returns the Fig. 18/20 scheme set.
func perfSchemes() []gpusim.Scheme {
	return []gpusim.Scheme{
		gpusim.CDMAPlus(),
		gpusim.GIST(),
		gpusim.SFPROnly(),
		gpusim.JPEGBase(gpusim.JPEGBaseDefaultRatios()),
		gpusim.JPEGAct(gpusim.JPEGActDefaultRatios()),
	}
}

func runFig18(o Options) *Result {
	res := &Result{
		ID:     "fig18",
		Title:  Title("fig18"),
		Header: []string{"method", "speedup vs vDNN", "accuracy change"},
		Notes: []string{
			"speedup: geometric mean over the CNR microbenchmarks (gpusim)",
			"accuracy change: functional training on the mini ResNet50 (train)",
			"JPEG-ACT variants dominate the frontier: more speedup per accuracy point (Fig. 18)",
		},
	}
	cfg := gpusim.TitanV(4)
	ws := gpusim.Workloads()

	type pt struct {
		scheme gpusim.Scheme
		method compress.Method
	}
	pts := []pt{
		{gpusim.CDMAPlus(), compress.CDMAPlus{}},
		{gpusim.GIST(), compress.GIST{}},
		{gpusim.SFPROnly(), compress.SFPROnly{}},
		{gpusim.JPEGBase(gpusim.JPEGBaseDefaultRatios()), compress.NewJPEGBase(quant.JPEGQuality(80))},
		{gpusim.JPEGAct(gpusim.JPEGActDefaultRatios()), compress.NewJPEGAct(quant.OptL5H())},
	}
	base := runOne(o, "ResNet50", compress.Baseline{})
	for _, p := range pts {
		// Geometric-mean speedup across workloads.
		prod := 1.0
		for _, w := range ws {
			prod *= gpusim.Relative(w, p.scheme, cfg)
		}
		speedup := pow(prod, 1/float64(len(ws)))
		rep := runOne(o, "ResNet50", p.method)
		res.Rows = append(res.Rows, []string{
			p.scheme.Name, f("%.2fx", speedup),
			f("%+.2f%%", 100*(rep.BestScore-base.BestScore)),
		})
	}
	return res
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

func runFig20(o Options) *Result {
	res := &Result{
		ID:     "fig20",
		Title:  Title("fig20"),
		Header: []string{"workload", "cDMA+", "GIST", "SFPR", "JPEG-BASE", "JPEG-ACT"},
		Notes: []string{
			"relative performance to vDNN on three-CNR-block microbenchmarks, batch 16",
			"VDSR's bars sit lowest: its low-compute-density kernels leave little offload to hide (§VI-D)",
		},
	}
	cfg := gpusim.TitanV(4)
	for _, w := range gpusim.Workloads() {
		row := []string{w.Name}
		for _, s := range perfSchemes() {
			row = append(row, f("%.2fx", gpusim.Relative(w, s, cfg)))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runFig21(o Options) *Result {
	res := &Result{
		ID:     "fig21",
		Title:  Title("fig21"),
		Header: []string{"compression", "1 CDU", "2 CDU", "4 CDU", "8 CDU", "cache+DMA(4)"},
		Notes: []string{
			"runtime relative to the 1-CDU point at the same ratio (higher is faster)",
			"extra CDUs only pay at high ratios; the cache-side SFPR variant adds ≈1% (§VI-E)",
		},
	}
	var w gpusim.Workload
	for _, c := range gpusim.Workloads() {
		if c.Name == "ResNet50" {
			w = c
		}
	}
	for _, ratio := range []float64{2, 4, 8, 12} {
		s := gpusim.Scheme{Name: "fixed", Offload: true, DMASide: true,
			Ratio: func(compress.Kind) float64 { return ratio }}
		s.CompressPasses = func(compress.Kind) float64 { return 0 }
		s.DecompressPasses = s.CompressPasses
		base := gpusim.Simulate(w, s, gpusim.TitanV(1)).Total()
		row := []string{f("%.0fx", ratio)}
		for _, n := range []int{1, 2, 4, 8} {
			t := gpusim.Simulate(w, s, gpusim.TitanV(n)).Total()
			row = append(row, f("%.2f", base/t))
		}
		cfg := gpusim.TitanV(4)
		cfg.CacheSideSFPR = true
		row = append(row, f("%.2f", base/gpusim.Simulate(w, s, cfg).Total()))
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runTable4(o Options) *Result {
	res := &Result{
		ID:     "table4",
		Title:  Title("table4"),
		Header: []string{"component", "area (µm²)", "power (mW)"},
		Notes:  []string{"structural cost model calibrated to the paper's 15 nm synthesis (DESIGN.md substitution 5)"},
	}
	for _, c := range hw.TableIV() {
		res.Rows = append(res.Rows, []string{c.Name, f("%.0f", c.AreaUM2), f("%.1f", c.PowerMW)})
	}
	return res
}

func runTable5(o Options) *Result {
	res := &Result{
		ID:     "table5",
		Title:  Title("table5"),
		Header: []string{"design", "power (W)", "area (mm²)", "compression", "offload (GB/s)", "% GPU area", "% GPU power"},
		Notes:  []string{"4 CDUs plus buffers and collector/splitter; crossbar excluded (Table V)"},
	}
	for _, d := range hw.TableV() {
		af, pf := d.GPUFraction()
		res.Rows = append(res.Rows, []string{
			d.Name, f("%.2f", d.PowerW), f("%.2f", d.AreaMM2),
			f("%.1fx", d.Compression), f("%.1f", d.OffloadGBs),
			f("%.2f%%", 100*af), f("%.2f%%", 100*pf),
		})
	}
	return res
}

func init() {
	register("capacity", "GPU memory capacity sweep: stalls and fit per offload scheme", runCapacity)
}

func runCapacity(o Options) *Result {
	res := &Result{
		ID:     "capacity",
		Title:  Title("capacity"),
		Header: []string{"capacity (frac of acts)", "vDNN stall ms", "JPEG-ACT stall ms", "GIST fits"},
		Notes: []string{
			"ResNet50/IN microbenchmark under a shrinking GPU memory budget",
			"offloading (especially compressed) needs far less resident memory than GIST's in-GPU compression — the §I motivation for offload over GPU-memory compression",
		},
	}
	cfg := gpusim.TitanV(4)
	var w gpusim.Workload
	for _, c := range gpusim.Workloads() {
		if c.Name == "ResNet50/IN" {
			w = c
		}
	}
	act := gpusim.JPEGAct(gpusim.JPEGActDefaultRatios())
	for _, frac := range []float64{1.0, 0.5, 0.25, 0.1} {
		capacity := w.TotalActBytes() * frac
		rv := gpusim.SimulateWithCapacity(w, gpusim.VDNN(), cfg, capacity)
		ra := gpusim.SimulateWithCapacity(w, act, cfg, capacity)
		rg := gpusim.SimulateWithCapacity(w, gpusim.GIST(), cfg, capacity)
		res.Rows = append(res.Rows, []string{
			f("%.2f", frac),
			f("%.2f", rv.StallSeconds*1e3),
			f("%.2f", ra.StallSeconds*1e3),
			f("%v", rg.FitsInMemory),
		})
	}
	return res
}

func init() {
	register("fig1a", "Forward-pass offload schedules (ASCII Gantt of the CNR stream overlap)", runFig1a)
}

func runFig1a(o Options) *Result {
	res := &Result{
		ID:     "fig1a",
		Title:  Title("fig1a"),
		Header: []string{"schedule ('#' compute, '=' memcpy, '.' idle; rows rendered below)"},
		Notes: []string{
			"vDNN: the memcpy stream saturates and stretches far past compute",
			"GIST: no memcpy, but compression kernels lengthen the compute stream",
			"JPEG-ACT: offloads hide almost entirely behind the kernels (Fig. 1a)",
		},
	}
	cfg := gpusim.TitanV(4)
	var w gpusim.Workload
	for _, c := range gpusim.Workloads() {
		if c.Name == "ResNet50" {
			w = c
		}
	}
	for _, s := range []gpusim.Scheme{
		gpusim.VDNN(), gpusim.CDMAPlus(), gpusim.GIST(),
		gpusim.JPEGAct(gpusim.JPEGActDefaultRatios()),
	} {
		tr := gpusim.TraceForward(w, s, cfg)
		cu, mu := tr.Utilization()
		res.Rows = append(res.Rows, []string{
			f("%s  (makespan %.2f ms, compute util %.0f%%, memcpy util %.0f%%)",
				s.Name, tr.Makespan*1e3, cu*100, mu*100),
		})
		for _, line := range strings.Split(strings.TrimRight(tr.Render(72), "\n"), "\n") {
			res.Rows = append(res.Rows, []string{line})
		}
	}
	return res
}

func init() {
	register("tta", "Relative time-to-accuracy: training curve × simulated iteration time", runTTA)
}

// runTTA combines the functional training curves with the simulated
// per-iteration times — the paper's framing that "a reduction in the time
// it takes to train machine learning models can be translated into
// improvements in accuracy" (§I). Epochs-to-target comes from the mini
// training runs; seconds/iteration from gpusim on the ResNet50
// microbenchmark.
func runTTA(o Options) *Result {
	res := &Result{
		ID:     "tta",
		Title:  Title("tta"),
		Header: []string{"method", "epochs to target", "iter time (rel vDNN)", "time-to-accuracy (rel vDNN)"},
		Notes: []string{
			"target = baseline best accuracy − 0.05 on the mini ResNet50",
			"compressed offload wins on wall-clock even when it needs a comparable epoch count",
		},
	}
	cfg := gpusim.TitanV(4)
	var w gpusim.Workload
	for _, c := range gpusim.Workloads() {
		if c.Name == "ResNet50" {
			w = c
		}
	}
	base := runOne(o, "ResNet50", compress.Baseline{})
	target := base.BestScore - 0.05
	vdnnIter := gpusim.Simulate(w, gpusim.VDNN(), cfg).Total()

	type cand struct {
		scheme gpusim.Scheme
		method compress.Method
	}
	cands := []cand{
		{gpusim.VDNN(), compress.Baseline{}},
		{gpusim.GIST(), compress.GIST{}},
		{gpusim.JPEGAct(gpusim.JPEGActDefaultRatios()), compress.NewJPEGAct(quant.OptL5H())},
	}
	var vdnnTTA float64
	for i, c := range cands {
		rep := runOne(o, "ResNet50", c.method)
		epochs := len(rep.Epochs) // did not reach target
		for _, e := range rep.Epochs {
			if e.Score >= target {
				epochs = e.Epoch + 1
				break
			}
		}
		iter := gpusim.Simulate(w, c.scheme, cfg).Total()
		tta := float64(epochs) * iter
		if i == 0 {
			vdnnTTA = tta
		}
		res.Rows = append(res.Rows, []string{
			c.scheme.Name,
			f("%d", epochs),
			f("%.2f", iter/vdnnIter),
			f("%.2f", tta/vdnnTTA),
		})
	}
	return res
}
