package compress

import "sync"

// sync.Pool-backed scratch buffers for the block round trip. The
// pipeline's hot path (one call per saved activation per training step)
// used to allocate a padded float plane, a flat int8 copy and a decoded
// block slice on every call; pooling them keeps the parallel path from
// trading the compute bottleneck for a GC bottleneck. Buffers are
// returned dirty — callers that need zeroed padding clear it themselves.

var (
	f32Pool = sync.Pool{New: func() interface{} { s := make([]float32, 0); return &s }}
	i8Pool  = sync.Pool{New: func() interface{} { s := make([]int8, 0); return &s }}
	blkPool = sync.Pool{New: func() interface{} { s := make([][64]int8, 0); return &s }}
)

func getF32(n int) *[]float32 {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putF32(p *[]float32) { f32Pool.Put(p) }

func getI8(n int) *[]int8 {
	p := i8Pool.Get().(*[]int8)
	if cap(*p) < n {
		*p = make([]int8, n)
	}
	*p = (*p)[:n]
	return p
}

func putI8(p *[]int8) { i8Pool.Put(p) }

func getBlocks(n int) *[][64]int8 {
	p := blkPool.Get().(*[][64]int8)
	if cap(*p) < n {
		*p = make([][64]int8, n)
	}
	*p = (*p)[:n]
	return p
}

func putBlocks(p *[][64]int8) { blkPool.Put(p) }
