package compress

import (
	"bytes"
	"runtime"
	"testing"

	"jpegact/internal/parallel"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// Determinism is a correctness requirement for a compression codec: the
// compressed bytes and the recovered tensor must be identical whether
// the pipeline ran on 1 worker or N. These tests pin that contract for
// worker counts {1, 2, GOMAXPROCS}.

func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// sparseTensor fills a tensor with ~50% zeros and Gaussian values,
// without the multiple-of-8 shape restriction of data.ActivationTensor.
func sparseTensor(r *tensor.RNG, n, c, h, w int) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	for i := range x.Data {
		if r.Float64() < 0.5 {
			x.Data[i] = float32(r.Norm())
		}
	}
	return x
}

func TestRoundtripDeterministicAcrossWorkers(t *testing.T) {
	r := tensor.NewRNG(7)
	for _, shape := range [][4]int{{2, 8, 16, 16}, {1, 3, 9, 11}, {4, 16, 32, 32}} {
		x := sparseTensor(r, shape[0], shape[1], shape[2], shape[3])
		for _, p := range []Pipeline{JPEGAct(quant.OptH()), JPEGBase(quant.JPEGQuality(80))} {
			var refRec *tensor.Tensor
			var refBytes int
			for _, w := range workerCounts() {
				old := parallel.SetWorkers(w)
				rec, n := p.Roundtrip(x)
				parallel.SetWorkers(old)
				if refRec == nil {
					refRec, refBytes = rec, n
					continue
				}
				if n != refBytes {
					t.Fatalf("shape %v workers=%d: compressed size %d, want %d", shape, w, n, refBytes)
				}
				for i := range rec.Data {
					if rec.Data[i] != refRec.Data[i] {
						t.Fatalf("shape %v workers=%d: recovered value %d differs: %v vs %v",
							shape, w, i, rec.Data[i], refRec.Data[i])
					}
				}
			}
		}
	}
}

func TestContainerBytesDeterministicAcrossWorkers(t *testing.T) {
	r := tensor.NewRNG(9)
	x := sparseTensor(r, 2, 8, 24, 24)
	p := JPEGAct(quant.OptL())
	var ref []byte
	for _, w := range workerCounts() {
		old := parallel.SetWorkers(w)
		var buf bytes.Buffer
		if _, err := p.WriteTensor(&buf, x); err != nil {
			t.Fatal(err)
		}
		parallel.SetWorkers(old)
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), ref) {
			t.Fatalf("workers=%d: container bytes differ from workers=1", w)
		}
	}
}

func TestQuantizeBlocksDeterministicAcrossWorkers(t *testing.T) {
	r := tensor.NewRNG(11)
	x := sparseTensor(r, 2, 4, 17, 19)
	p := JPEGAct(quant.OptH())
	var refBlocks [][64]int8
	var refScales []float32
	for _, w := range workerCounts() {
		old := parallel.SetWorkers(w)
		blocks, scales, _ := p.QuantizeBlocks(x)
		parallel.SetWorkers(old)
		if refBlocks == nil {
			refBlocks, refScales = blocks, scales
			continue
		}
		if len(blocks) != len(refBlocks) {
			t.Fatalf("workers=%d: %d blocks, want %d", w, len(blocks), len(refBlocks))
		}
		for i := range blocks {
			if blocks[i] != refBlocks[i] {
				t.Fatalf("workers=%d: block %d differs", w, i)
			}
		}
		for c := range scales {
			if scales[c] != refScales[c] {
				t.Fatalf("workers=%d: scale %d differs", w, c)
			}
		}
	}
}
