package compress

import (
	"jpegact/internal/accel"
	"jpegact/internal/dct"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// HardwareJPEGACT is JPEG-ACT backed by the cycle-counted CDU datapath of
// internal/accel instead of the float functional pipeline: SFPR codes are
// blocked through the alignment-buffer layout, pushed through the
// fixed-point DCT → SH → ZVC stages, marshalled into 128 B DMA packets by
// the collector, and decompressed back through the splitter. Use it to
// verify that training under the *hardware* datapath behaves like
// training under the functional simulation, and to account cycles.
type HardwareJPEGACT struct {
	Schedule quant.Schedule
	NumCDU   int
	S        float64
	// TotalCycles accumulates compression-side CDU cycles across calls.
	TotalCycles int64
}

// NewHardwareJPEGACT builds the hardware-backed method with n CDUs.
func NewHardwareJPEGACT(s quant.Schedule, n int) *HardwareJPEGACT {
	return &HardwareJPEGACT{Schedule: s, NumCDU: n}
}

// Name implements Method.
func (h *HardwareJPEGACT) Name() string { return "JPEG-ACT-HW/" + h.Schedule.Name }

// Lossless implements Method.
func (*HardwareJPEGACT) Lossless() bool { return false }

func (h *HardwareJPEGACT) scale() float64 {
	if h.S == 0 {
		return sfpr.DefaultS
	}
	return h.S
}

// Compress implements Method with the Table II policy; the conv/sum path
// runs on the accel datapath.
func (h *HardwareJPEGACT) Compress(x *tensor.Tensor, kind Kind, epoch int) Result {
	if kind != KindConv || !jpegApplicable(x.Shape) {
		// Non-JPEG kinds follow the same policy as the functional method.
		sw := NewJPEGAct(h.Schedule)
		sw.S = h.S
		return sw.Compress(x, kind, epoch)
	}
	orig := x.Bytes()

	// SFPR with per-channel scales, then the padded block layout the
	// alignment buffer sees (§III-C).
	c := sfpr.Compress(x, h.scale())
	codes := tensor.New(x.Shape.N, x.Shape.C, x.Shape.H, x.Shape.W)
	for i, v := range c.Values {
		codes.Data[i] = float32(v)
	}
	padded, info := tensor.PadForBlocks(codes, dct.BlockSize)
	cols := info.BlockCols
	nb := (info.BlockRows / 8) * (cols / 8)
	blocks := make([][64]int8, nb)
	bi := 0
	for by := 0; by < info.BlockRows/8; by++ {
		for bx := 0; bx < cols/8; bx++ {
			for r := 0; r < 8; r++ {
				for cc := 0; cc < 8; cc++ {
					blocks[bi][r*8+cc] = int8(padded[(by*8+r)*cols+bx*8+cc])
				}
			}
			bi++
		}
	}

	a := accel.New(h.NumCDU, *h.Schedule.For(epoch))
	stream := a.CompressCodes(blocks)
	h.TotalCycles += int64(stream.Cycles)
	recBlocks, _ := a.DecompressCodes(stream)

	// Rebuild the code plane, unpad, and undo SFPR.
	recPadded := make([]float32, info.PaddedElems())
	bi = 0
	for by := 0; by < info.BlockRows/8; by++ {
		for bx := 0; bx < cols/8; bx++ {
			for r := 0; r < 8; r++ {
				for cc := 0; cc < 8; cc++ {
					recPadded[(by*8+r)*cols+bx*8+cc] = float32(recBlocks[bi][r*8+cc])
				}
			}
			bi++
		}
	}
	recCodes := tensor.UnpadFromBlocks(recPadded, info)
	vals := make([]int8, recCodes.Elems())
	for i, v := range recCodes.Data {
		vals[i] = int8(v)
	}
	out := tensor.New(x.Shape.N, x.Shape.C, x.Shape.H, x.Shape.W)
	sfpr.DequantizeInto(vals, c.Scales, out)

	return Result{
		Recovered:       out,
		CompressedBytes: stream.Bytes + 4*len(c.Scales),
		OriginalBytes:   orig,
	}
}
