package compress

import (
	"math"
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// correlatedAct builds a dense activation with image-like spatial
// correlation, the regime where transform coding pays off.
func correlatedAct(seed uint64, n, c, h, w int) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	x := tensor.New(n, c, h, w)
	plane := h * w
	for i := 0; i < n*c; i++ {
		copy(x.Data[i*plane:(i+1)*plane], data.Texture(r, h, w, 5))
	}
	return x
}

// reluAct builds a sparse activation (~50% zeros) as a ReLU output.
func reluAct(seed uint64, n, c, h, w int) *tensor.Tensor {
	x := correlatedAct(seed, n, c, h, w)
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	return x
}

func TestBaselineIdentity(t *testing.T) {
	x := correlatedAct(1, 1, 2, 16, 16)
	res := Baseline{}.Compress(x, KindConv, 0)
	if res.Ratio() != 1 {
		t.Fatalf("ratio %v", res.Ratio())
	}
	if tensor.MSE(x, res.Recovered) != 0 {
		t.Fatal("baseline must be exact")
	}
}

func TestCDMAPlusDenseUncompressed(t *testing.T) {
	x := correlatedAct(2, 1, 2, 16, 16)
	res := CDMAPlus{}.Compress(x, KindConv, 0)
	if res.Ratio() != 1 {
		t.Fatalf("dense ratio %v, want 1", res.Ratio())
	}
}

func TestCDMAPlusSparseRatio(t *testing.T) {
	x := reluAct(3, 2, 4, 16, 16)
	res := CDMAPlus{}.Compress(x, KindReLUToConv, 0)
	// ~50% sparsity: ratio ≈ 32/(1+16) ≈ 1.9.
	if res.Ratio() < 1.5 || res.Ratio() > 3.5 {
		t.Fatalf("ZVC ratio %v out of expected band", res.Ratio())
	}
	if tensor.MSE(x, res.Recovered) != 0 {
		t.Fatal("cDMA+ must be lossless")
	}
}

func TestGISTDenseIs4x(t *testing.T) {
	x := correlatedAct(4, 1, 4, 16, 16)
	res := GIST{}.Compress(x, KindConv, 0)
	if math.Abs(res.Ratio()-4) > 0.01 {
		t.Fatalf("DPR ratio %v, want 4", res.Ratio())
	}
	// 8-bit float is lossy but bounded: relative error ≤ 1/8 per normal
	// element, absolute error ≤ half the subnormal quantum (2^-10) below.
	for i := range x.Data {
		d := math.Abs(float64(res.Recovered.Data[i] - x.Data[i]))
		if d > math.Abs(float64(x.Data[i]))/8+math.Pow(2, -10) {
			t.Fatalf("DPR error %v at %d", d, i)
		}
	}
}

func TestGISTBRCMask(t *testing.T) {
	x := reluAct(5, 1, 2, 8, 8)
	res := GIST{}.Compress(x, KindReLUToOther, 0)
	if res.Recovered != nil || res.Mask == nil {
		t.Fatal("BRC must return a mask")
	}
	if math.Abs(res.Ratio()-32) > 0.5 {
		t.Fatalf("BRC ratio %v, want 32", res.Ratio())
	}
	for i, v := range x.Data {
		if res.Mask[i] != (v > 0) {
			t.Fatalf("mask mismatch at %d", i)
		}
	}
}

func TestGISTCSRPoorOnDense(t *testing.T) {
	// CSR on a low-sparsity activation must be worse than plain 8-bit DPR
	// (ratio < 4) — the Table I pathology.
	x := correlatedAct(6, 1, 4, 16, 16) // dense
	res := GIST{}.Compress(x, KindPoolDropout, 0)
	if res.Ratio() >= 4 {
		t.Fatalf("CSR on dense data ratio %v, want < 4", res.Ratio())
	}
	// And fine on high sparsity.
	sparse := x.Clone()
	for i := range sparse.Data {
		if i%10 != 0 {
			sparse.Data[i] = 0
		}
	}
	res2 := GIST{}.Compress(sparse, KindPoolDropout, 0)
	if res2.Ratio() < 8 {
		t.Fatalf("CSR on 90%% sparsity ratio %v, want > 8", res2.Ratio())
	}
}

func TestSFPROnlyRatio(t *testing.T) {
	x := correlatedAct(7, 2, 8, 16, 16)
	res := SFPROnly{}.Compress(x, KindConv, 0)
	if res.Ratio() < 3.8 || res.Ratio() > 4.0 {
		t.Fatalf("SFPR ratio %v, want ≈4", res.Ratio())
	}
	if e := tensor.L2Error(x, res.Recovered); e > 0.01 {
		t.Fatalf("SFPR error %v", e)
	}
}

func TestJPEGActBeatsSFPROnCorrelatedData(t *testing.T) {
	x := correlatedAct(8, 2, 8, 32, 32)
	sres := SFPROnly{}.Compress(x, KindConv, 0)
	jres := NewJPEGAct(quant.Fixed(quant.OptL())).Compress(x, KindConv, 0)
	if jres.Ratio() <= sres.Ratio() {
		t.Fatalf("JPEG-ACT ratio %v should beat SFPR %v", jres.Ratio(), sres.Ratio())
	}
}

func TestJPEGPipelineErrorOrdering(t *testing.T) {
	// optL must have lower reconstruction error than optH; optH must have
	// higher compression. Measured on flat-spectrum activation-like data,
	// where the AC divisors actually bite (on ultra-smooth data both
	// tables floor at the SFPR precision).
	rr := tensor.NewRNG(9)
	x := data.ActivationTensor(rr, 2, 8, 32, 32, 0.5, 1.0)
	l := NewJPEGAct(quant.Fixed(quant.OptL())).Compress(x, KindConv, 0)
	h := NewJPEGAct(quant.Fixed(quant.OptH())).Compress(x, KindConv, 0)
	el := tensor.L2Error(x, l.Recovered)
	eh := tensor.L2Error(x, h.Recovered)
	if el >= eh {
		t.Fatalf("optL error %v should be below optH error %v", el, eh)
	}
	if h.Ratio() <= l.Ratio() {
		t.Fatalf("optH ratio %v should exceed optL ratio %v", h.Ratio(), l.Ratio())
	}
}

func TestJPEGBaseVsActBackEnds(t *testing.T) {
	// On flat-spectrum activation-like data with the flat optimized DQT,
	// the ZVC back end must beat RLE (§VI-C, Table III optL column), and
	// the SH power-of-two quantizer must stay close to DIV in error.
	r := tensor.NewRNG(10)
	x := data.ActivationTensor(r, 2, 8, 32, 32, 0.4, 1.0)
	d := quant.OptL()
	rle := Pipeline{DQT: d, UseShift: false, UseZVC: false, S: 1.125}
	zvc := Pipeline{DQT: d, UseShift: true, UseZVC: true, S: 1.125}
	recR, bytesR := rle.Roundtrip(x)
	recZ, bytesZ := zvc.Roundtrip(x)
	if bytesZ >= bytesR {
		t.Fatalf("SH+ZVC %dB should beat DIV+RLE %dB on flat-DQT activations", bytesZ, bytesR)
	}
	eb := tensor.L2Error(x, recR)
	ea := tensor.L2Error(x, recZ)
	if ea > 2.5*eb+1e-6 {
		t.Fatalf("SH error %v too far above DIV error %v", ea, eb)
	}
}

func TestJPEGSmallActivationFallsBackToSFPR(t *testing.T) {
	x := correlatedAct(11, 1, 1, 4, 4) // W < 8: no 8×8 blocks
	j := NewJPEGAct(quant.Fixed(quant.OptH()))
	res := j.Compress(x, KindConv, 0)
	if res.Ratio() < 2 || res.Ratio() > 4.1 {
		t.Fatalf("fallback ratio %v, want ≈4 (SFPR)", res.Ratio())
	}
}

func TestJPEGReLUPolicy(t *testing.T) {
	x := reluAct(12, 2, 4, 16, 16)
	j := NewJPEGAct(quant.OptL5H())
	toOther := j.Compress(x, KindReLUToOther, 0)
	if toOther.Mask == nil {
		t.Fatal("ReLU(to other) must use BRC")
	}
	toConv := j.Compress(x, KindReLUToConv, 0)
	if toConv.Recovered == nil {
		t.Fatal("ReLU(to conv) must keep values")
	}
	// SFPR+ZVC on ~50% sparsity: ratio ≈ 4 / (0.5 + 1/8) ≈ 6.4.
	if toConv.Ratio() < 4.5 {
		t.Fatalf("SFPR+ZVC ratio %v, want > 4.5", toConv.Ratio())
	}
	// JPEG-BASE has no ZVC: plain SFPR (≈4×).
	jb := NewJPEGBase(quant.JPEGQuality(80))
	bres := jb.Compress(x, KindReLUToConv, 0)
	if bres.Ratio() > 4.05 {
		t.Fatalf("JPEG-BASE ReLU ratio %v, want ≈4", bres.Ratio())
	}
}

func TestScheduleSwitchesDQT(t *testing.T) {
	rr := tensor.NewRNG(13)
	x := data.ActivationTensor(rr, 1, 8, 32, 32, 0.5, 1.0)
	j := NewJPEGAct(quant.OptL5H())
	early := j.Compress(x, KindConv, 0)
	late := j.Compress(x, KindConv, 10)
	if late.Ratio() <= early.Ratio() {
		t.Fatalf("optL5H late ratio %v must exceed early %v", late.Ratio(), early.Ratio())
	}
	ee := tensor.L2Error(x, early.Recovered)
	el := tensor.L2Error(x, late.Recovered)
	if ee >= el {
		t.Fatalf("early error %v must be below late error %v", ee, el)
	}
}

func TestPipelineRoundtripPreservesShape(t *testing.T) {
	for _, sh := range []tensor.Shape{
		{N: 1, C: 1, H: 8, W: 8},
		{N: 2, C: 3, H: 6, W: 10}, // needs padding
		{N: 1, C: 2, H: 13, W: 9},
	} {
		x := correlatedAct(14, sh.N, sh.C, sh.H, sh.W)
		p := JPEGAct(quant.OptL())
		rec, bytes := p.Roundtrip(x)
		if rec.Shape != sh {
			t.Fatalf("shape %v -> %v", sh, rec.Shape)
		}
		if bytes <= 0 {
			t.Fatal("no bytes accounted")
		}
	}
}

func TestPipelineQuantizedBlocksCount(t *testing.T) {
	x := correlatedAct(15, 1, 2, 8, 16)
	p := JPEGBase(quant.JPEGQuality(80))
	blocks, scales, info := p.QuantizeBlocks(x)
	if len(blocks) != (info.BlockRows/8)*(info.BlockCols/8) {
		t.Fatalf("block count %d", len(blocks))
	}
	if len(scales) != 2 {
		t.Fatalf("scales %d", len(scales))
	}
	rec := p.ReconstructBlocks(blocks, scales, info)
	if rec.Shape != x.Shape {
		t.Fatal("reconstruct shape mismatch")
	}
}

func TestStandardRegistry(t *testing.T) {
	ms := Standard()
	if len(ms) != 9 {
		t.Fatalf("want 9 methods, got %d", len(ms))
	}
	wantNames := []string{
		"baseline", "cDMA+", "GIST", "SFPR",
		"JPEG-BASE/jpeg80", "JPEG-BASE/jpeg60",
		"JPEG-ACT/optL", "JPEG-ACT/optH", "JPEG-ACT/optL5H",
	}
	for i, m := range ms {
		if m.Name() != wantNames[i] {
			t.Fatalf("method %d = %q, want %q", i, m.Name(), wantNames[i])
		}
	}
	// Lossless flags.
	if !ms[0].Lossless() || !ms[1].Lossless() {
		t.Fatal("baseline and cDMA+ are lossless")
	}
	for _, m := range ms[2:] {
		if m.Lossless() {
			t.Fatalf("%s should be lossy", m.Name())
		}
	}
}

func TestPolicyForMatchesTableII(t *testing.T) {
	gist := GIST{}
	if PolicyFor(gist, KindConv) != "DPR" || PolicyFor(gist, KindReLUToOther) != "BRC" ||
		PolicyFor(gist, KindReLUToConv) != "DPR+CSR" {
		t.Fatal("GIST policy wrong")
	}
	act := NewJPEGAct(quant.OptL5H())
	if PolicyFor(act, KindConv) != "SFPR+DCT+SH+ZVC" || PolicyFor(act, KindPoolDropout) != "SFPR+ZVC" {
		t.Fatal("JPEG-ACT policy wrong")
	}
	base := NewJPEGBase(quant.JPEGQuality(80))
	if PolicyFor(base, KindConv) != "SFPR+DCT+DIV+RLE" || PolicyFor(base, KindReLUToConv) != "SFPR" {
		t.Fatal("JPEG-BASE policy wrong")
	}
	if PolicyFor(CDMAPlus{}, KindConv) != "none" || PolicyFor(CDMAPlus{}, KindPoolDropout) != "ZVC" {
		t.Fatal("cDMA+ policy wrong")
	}
}

func TestCompressionErrorIsBounded(t *testing.T) {
	// Recovered activations from every lossy method must stay within a
	// sane error band of the input — the basic convergence prerequisite.
	x := correlatedAct(16, 2, 4, 16, 16)
	for _, m := range Standard()[2:] {
		res := m.Compress(x, KindConv, 0)
		if res.Recovered == nil {
			continue
		}
		if e := tensor.L2Error(x, res.Recovered); e > 0.05 {
			t.Fatalf("%s error %v too large", m.Name(), e)
		}
	}
}

func BenchmarkJPEGActRoundtrip(b *testing.B) {
	x := correlatedAct(17, 4, 16, 32, 32)
	p := JPEGAct(quant.OptH())
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Roundtrip(x)
	}
}
