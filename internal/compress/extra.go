package compress

import (
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// Extra methods beyond the paper's main Table I set: the BFP baseline of
// Courbariaux et al. (§II-B2), the 16-bit GIST variant Jain et al.
// propose for accuracy-sensitive networks, and a hardware-backed
// JPEG-ACT (see hardware.go) for cross-checking the RTL-level datapath
// against the functional pipeline during training.

// BFPMethod applies Block Floating Point: per-channel shared power-of-two
// exponents with fixed-point mantissas of the given width.
type BFPMethod struct {
	ManBits uint // mantissa bits; zero means 10 (Courbariaux's setting)
}

// Name implements Method.
func (b BFPMethod) Name() string { return "BFP" }

// Lossless implements Method.
func (BFPMethod) Lossless() bool { return false }

func (b BFPMethod) bits() uint {
	if b.ManBits == 0 {
		return 10
	}
	return b.ManBits
}

// Compress implements Method: every kind is reduced to the shared-
// exponent fixed-point form; storage is manBits per value plus one
// exponent byte per channel.
func (b BFPMethod) Compress(x *tensor.Tensor, _ Kind, _ int) Result {
	bits := b.bits()
	rec := sfpr.BFP(x, bits)
	bytes := (x.Elems()*int(bits)+7)/8 + x.Shape.C
	return Result{Recovered: rec, CompressedBytes: bytes, OriginalBytes: x.Bytes()}
}

// GIST16 returns the 16-bit DPR GIST variant: half the compression of
// 8-bit GIST but far lower quantization error (the trade-off §VI-B
// mentions for deep networks).
func GIST16() Method { return GIST{Format: sfpr.FP16} }
