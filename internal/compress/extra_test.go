package compress

import (
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func TestBFPMethod(t *testing.T) {
	x := correlatedAct(30, 2, 4, 16, 16)
	res := BFPMethod{ManBits: 10}.Compress(x, KindConv, 0)
	// 10 bits/value + 1 exponent byte/channel ≈ 3.2x.
	if res.Ratio() < 3 || res.Ratio() > 3.3 {
		t.Fatalf("BFP ratio %v", res.Ratio())
	}
	if e := tensor.L2Error(x, res.Recovered); e > 0.01 {
		t.Fatalf("BFP error %v", e)
	}
	if (BFPMethod{}).bits() != 10 {
		t.Fatal("default mantissa bits")
	}
	if (BFPMethod{}).Lossless() {
		t.Fatal("BFP is lossy")
	}
}

func TestGIST16HalvesCompressionDoublesFidelity(t *testing.T) {
	x := correlatedAct(31, 2, 4, 16, 16)
	g8 := GIST{}.Compress(x, KindConv, 0)
	g16 := GIST16().Compress(x, KindConv, 0)
	if g16.Ratio() >= g8.Ratio() {
		t.Fatalf("16-bit ratio %v must be below 8-bit %v", g16.Ratio(), g8.Ratio())
	}
	e8 := tensor.L2Error(x, g8.Recovered)
	e16 := tensor.L2Error(x, g16.Recovered)
	if e16 >= e8 {
		t.Fatalf("16-bit error %v must be below 8-bit %v", e16, e8)
	}
	if GIST16().Name() != "GIST-16" {
		t.Fatalf("name %q", GIST16().Name())
	}
}

func TestHardwareJPEGACTMatchesFunctional(t *testing.T) {
	// The hardware datapath must recover activations close to the float
	// functional pipeline (same DQT), and account comparable bytes.
	r := tensor.NewRNG(32)
	x := data.ActivationTensor(r, 2, 8, 32, 32, 0.5, 1.0)
	hwm := NewHardwareJPEGACT(quant.Fixed(quant.OptH()), 4)
	sw := NewJPEGAct(quant.Fixed(quant.OptH()))

	hres := hwm.Compress(x, KindConv, 0)
	sres := sw.Compress(x, KindConv, 0)

	if hres.Recovered.Shape != x.Shape {
		t.Fatal("shape lost")
	}
	eh := tensor.L2Error(x, hres.Recovered)
	es := tensor.L2Error(x, sres.Recovered)
	if eh > 1.5*es+1e-9 {
		t.Fatalf("hardware error %v too far above software %v", eh, es)
	}
	ratioDelta := hres.Ratio() / sres.Ratio()
	if ratioDelta < 0.85 || ratioDelta > 1.25 {
		t.Fatalf("hardware ratio %v vs software %v", hres.Ratio(), sres.Ratio())
	}
	if hwm.TotalCycles <= 0 {
		t.Fatal("no cycles accounted")
	}
}

func TestHardwareJPEGACTPolicyFallback(t *testing.T) {
	hwm := NewHardwareJPEGACT(quant.OptL5H(), 4)
	x := reluAct(33, 2, 4, 16, 16)
	res := hwm.Compress(x, KindReLUToOther, 0)
	if res.Mask == nil {
		t.Fatal("BRC policy must apply")
	}
	small := correlatedAct(34, 1, 1, 4, 4)
	res2 := hwm.Compress(small, KindConv, 0)
	if res2.Recovered == nil || res2.Ratio() > 4.1 {
		t.Fatalf("small activation fallback broken: %v", res2.Ratio())
	}
	if hwm.Name() != "JPEG-ACT-HW/optL5H" {
		t.Fatalf("name %q", hwm.Name())
	}
}

func TestHardwareJPEGACTUnpaddedShapes(t *testing.T) {
	// Shapes requiring NCH/W padding must roundtrip through the hardware
	// block layout.
	r := tensor.NewRNG(35)
	for _, sh := range []tensor.Shape{
		{N: 1, C: 3, H: 6, W: 10},
		{N: 2, C: 2, H: 13, W: 9},
	} {
		x := tensor.New(sh.N, sh.C, sh.H, sh.W)
		x.FillNormal(r, 0, 1)
		hwm := NewHardwareJPEGACT(quant.Fixed(quant.OptL()), 2)
		res := hwm.Compress(x, KindConv, 0)
		if res.Recovered.Shape != sh {
			t.Fatalf("shape %v -> %v", sh, res.Recovered.Shape)
		}
		if e := tensor.L2Error(x, res.Recovered); e > 0.05 {
			t.Fatalf("shape %v error %v", sh, e)
		}
	}
}

func TestAdaptivePipelineBeatsStaticTables(t *testing.T) {
	// Per-tensor canonical Huffman tables must not lose to the static
	// image tables on activation statistics (modulo the small header).
	r := tensor.NewRNG(36)
	x := data.ActivationTensor(r, 2, 8, 32, 32, 0.5, 1.0)
	d := quant.OptH()
	static := Pipeline{DQT: d}
	adaptive := Pipeline{DQT: d, Adaptive: true}
	recS, bytesS := static.Roundtrip(x)
	recA, bytesA := adaptive.Roundtrip(x)
	if bytesA >= bytesS {
		t.Fatalf("adaptive %dB should beat static %dB", bytesA, bytesS)
	}
	// Coding is lossless either way: identical reconstructions.
	if tensor.MSE(recS, recA) != 0 {
		t.Fatal("entropy coder changed the reconstruction")
	}
}

func TestPolicyForExtraMethods(t *testing.T) {
	if PolicyFor(BFPMethod{}, KindConv) != "BFP" {
		t.Fatal("BFP policy")
	}
	hw := NewHardwareJPEGACT(quant.OptL5H(), 4)
	if PolicyFor(hw, KindConv) != "CDU(SFPR+DCT+SH+ZVC)" ||
		PolicyFor(hw, KindReLUToOther) != "BRC" ||
		PolicyFor(hw, KindPoolDropout) != "SFPR+ZVC" {
		t.Fatal("hardware policy")
	}
	if PolicyFor(GIST16(), KindConv) != "DPR" {
		t.Fatal("GIST16 shares the GIST policy")
	}
}
