package compress

import (
	"jpegact/internal/dct"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// Fused per-block codec kernels: the software mirror of the CDU's
// single-pass block pipeline (§III-D), where SFPR codes feed the DCT
// units which feed the quantizer with no intermediate storage. Each 8×8
// tile is gathered straight from the int8 SFPR code plane (the logical
// padded (NCH)×W view is never materialized), transformed with the
// scaled float32 AAN DCT, and quantized with the descale factors folded
// into the table — one pass per block, no padded float plane, no
// zeroing pass, no float64 bounce.

// foldedForward returns the fused forward-quantizer table for the
// pipeline's backend with the AAN descale factors folded in.
func (p *Pipeline) foldedForward() [64]float32 {
	return p.DQT.FoldedForward(p.UseShift, &dct.AANDescale2D)
}

// foldedInverse returns the fused dequantizer table with the AAN
// prescale factors folded in.
func (p *Pipeline) foldedInverse() [64]float32 {
	return p.DQT.FoldedInverse(p.UseShift, &dct.AANPrescale2D)
}

// gatherBlock loads the 8×8 tile (by, bx) of the logical padded plane
// into blk, reading directly from the int8 code plane (rows × w
// row-major). Tiles fully inside the plane take the unconditional fast
// path; tiles touching the pad fringe zero-fill the out-of-range lanes,
// which is exactly what the padded plane held.
func gatherBlock(vals []int8, rows, w, by, bx int, blk *dct.Block) {
	r0 := by * 8
	c0 := bx * 8
	if r0+8 <= rows && c0+8 <= w {
		for r := 0; r < 8; r++ {
			src := vals[(r0+r)*w+c0:]
			dst := blk[r*8 : r*8+8]
			dst[0] = float32(src[0])
			dst[1] = float32(src[1])
			dst[2] = float32(src[2])
			dst[3] = float32(src[3])
			dst[4] = float32(src[4])
			dst[5] = float32(src[5])
			dst[6] = float32(src[6])
			dst[7] = float32(src[7])
		}
		return
	}
	nr := rows - r0
	if nr > 8 {
		nr = 8
	}
	nc := w - c0
	if nc > 8 {
		nc = 8
	}
	*blk = dct.Block{}
	for r := 0; r < nr; r++ {
		src := vals[(r0+r)*w+c0:]
		for c := 0; c < nc; c++ {
			blk[r*8+c] = float32(src[c])
		}
	}
}

// fusedQuantizeBlock runs one block through gather → scaled AAN forward
// DCT → folded quantization.
func fusedQuantizeBlock(vals []int8, rows, w, by, bx int, table *[64]float32, out *[64]int8) {
	var blk dct.Block
	gatherBlock(vals, rows, w, by, bx, &blk)
	dct.AANForward8x8(&blk)
	quant.FoldedQuantize((*[64]float32)(&blk), table, out)
}

// fusedReconstructBlock inverts fusedQuantizeBlock for block (by, bx):
// folded dequantization → scaled AAN inverse DCT → clamp back to the
// int8 SFPR code range → scatter into the output tensor with the
// per-channel inverse SFPR scale applied. invScales[nc] is the inverse
// scale of plane nc (0 for all-zero channels); pad-fringe lanes are
// dropped. out is the row-major data of the original-shape tensor.
func fusedReconstructBlock(q *[64]int8, table *[64]float32, by, bx int, sh tensor.Shape, invScales, out []float32) {
	var blk dct.Block
	quant.FoldedDequantize(q, table, (*[64]float32)(&blk))
	dct.AANInverse8x8(&blk)

	rows := sh.N * sh.C * sh.H
	w := sh.W
	r0 := by * 8
	c0 := bx * 8
	nr := rows - r0
	if nr > 8 {
		nr = 8
	}
	nc := w - c0
	if nc > 8 {
		nc = 8
	}
	for r := 0; r < nr; r++ {
		gr := r0 + r
		inv := invScales[gr/sh.H]
		dst := out[gr*w+c0:]
		for c := 0; c < nc; c++ {
			dst[c] = clampCode(blk[r*8+c]) * inv
		}
	}
}
