// Package compress composes the building blocks (sfpr, dct, quant,
// coding) into the activation-compression methods evaluated by the paper:
// the uncompressed baseline, cDMA+ (ZVC), GIST (DPR+BRC+CSR), SFPR-only,
// JPEG-BASE (SFPR+DCT+DIV+RLE) and JPEG-ACT (SFPR+DCT+SH+ZVC), together
// with the per-activation-type policy of Table II.
package compress

import (
	"jpegact/internal/coding"
	"jpegact/internal/dct"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// Pipeline is one configuration of the JPEG activation pipeline:
// SFPR → 8×8 DCT → {DIV | SH} quantization → {RLE | ZVC} coding.
type Pipeline struct {
	DQT      quant.DQT
	UseShift bool // SH instead of DIV (JPEG-ACT)
	UseZVC   bool // ZVC instead of RLE (JPEG-ACT)
	// Adaptive selects per-tensor canonical Huffman tables for the RLE
	// coder (a software-only extension; hardware keeps static tables).
	Adaptive bool
	S        float64 // SFPR global scale
}

// JPEGBase returns the JPEG-BASE pipeline with the given DQT.
func JPEGBase(d quant.DQT) Pipeline {
	return Pipeline{DQT: d, UseShift: false, UseZVC: false, S: sfpr.DefaultS}
}

// JPEGAct returns the JPEG-ACT pipeline with the given DQT.
func JPEGAct(d quant.DQT) Pipeline {
	return Pipeline{DQT: d, UseShift: true, UseZVC: true, S: sfpr.DefaultS}
}

// QuantizeBlocks runs the pipeline through quantization, returning the
// quantized 8×8 blocks, the SFPR scales, and the pad info needed to
// reconstruct. Exposed for the DQT optimizer and entropy analyses.
func (p *Pipeline) QuantizeBlocks(x *tensor.Tensor) ([][64]int8, []float32, tensor.PadInfo) {
	c := sfpr.Compress(x, p.s())
	codes := tensor.New(x.Shape.N, x.Shape.C, x.Shape.H, x.Shape.W)
	for i, v := range c.Values {
		codes.Data[i] = float32(v)
	}
	padded, info := tensor.PadForBlocks(codes, dct.BlockSize)
	cols := info.BlockCols
	nb := (info.BlockRows / 8) * (cols / 8)
	blocks := make([][64]int8, 0, nb)

	var blk dct.Block
	var coef [64]float32
	for by := 0; by < info.BlockRows/8; by++ {
		for bx := 0; bx < cols/8; bx++ {
			for r := 0; r < 8; r++ {
				for cc := 0; cc < 8; cc++ {
					blk[r*8+cc] = padded[(by*8+r)*cols+bx*8+cc]
				}
			}
			dct.Forward8x8(&blk)
			copy(coef[:], blk[:])
			var q [64]int8
			if p.UseShift {
				quant.ShiftQuantizeFloat(&coef, &p.DQT, &q)
			} else {
				quant.DivQuantize(&coef, &p.DQT, &q)
			}
			blocks = append(blocks, q)
		}
	}
	return blocks, c.Scales, info
}

// ReconstructBlocks inverts QuantizeBlocks: dequantize, inverse DCT,
// clip back to the int8 SFPR code range, undo padding and SFPR scaling.
func (p *Pipeline) ReconstructBlocks(blocks [][64]int8, scales []float32, info tensor.PadInfo) *tensor.Tensor {
	cols := info.BlockCols
	padded := make([]float32, info.PaddedElems())
	var blk dct.Block
	var coef [64]float32
	bi := 0
	for by := 0; by < info.BlockRows/8; by++ {
		for bx := 0; bx < cols/8; bx++ {
			q := &blocks[bi]
			bi++
			if p.UseShift {
				quant.ShiftDequantizeFloat(q, &p.DQT, &coef)
			} else {
				quant.DivDequantize(q, &p.DQT, &coef)
			}
			copy(blk[:], coef[:])
			dct.Inverse8x8(&blk)
			for r := 0; r < 8; r++ {
				for cc := 0; cc < 8; cc++ {
					padded[(by*8+r)*cols+bx*8+cc] = clampCode(blk[r*8+cc])
				}
			}
		}
	}
	codes := tensor.UnpadFromBlocks(padded, info)
	vals := make([]int8, codes.Elems())
	for i, v := range codes.Data {
		vals[i] = int8(v)
	}
	out := tensor.New(info.Orig.N, info.Orig.C, info.Orig.H, info.Orig.W)
	sfpr.DequantizeInto(vals, scales, out)
	return out
}

func clampCode(v float32) float32 {
	r := v
	if r >= 0 {
		r += 0.5
	} else {
		r -= 0.5
	}
	q := int32(r)
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return float32(q)
}

// Roundtrip compresses x through the full pipeline and returns the
// recovered activation plus the compressed byte count (coded stream +
// per-channel scales). The coded stream is actually encoded and decoded,
// so the losslessness of the coding stage is exercised on every call.
func (p *Pipeline) Roundtrip(x *tensor.Tensor) (*tensor.Tensor, int) {
	blocks, scales, info := p.QuantizeBlocks(x)
	var bytes int
	var decoded [][64]int8
	if p.UseZVC {
		flat := make([]int8, 0, len(blocks)*64)
		for i := range blocks {
			flat = append(flat, blocks[i][:]...)
		}
		enc := coding.EncodeZVC(flat)
		bytes = len(enc)
		back, err := coding.DecodeZVC(enc, len(flat))
		if err != nil {
			panic("compress: ZVC roundtrip failed: " + err.Error())
		}
		decoded = make([][64]int8, len(blocks))
		for i := range decoded {
			copy(decoded[i][:], back[i*64:(i+1)*64])
		}
	} else if p.Adaptive {
		enc := coding.EncodeJPEGBlocksAdaptive(blocks)
		bytes = len(enc)
		var err error
		decoded, err = coding.DecodeJPEGBlocksAdaptive(enc)
		if err != nil {
			panic("compress: adaptive entropy roundtrip failed: " + err.Error())
		}
	} else {
		enc := coding.EncodeJPEGBlocks(blocks)
		bytes = len(enc)
		var err error
		decoded, err = coding.DecodeJPEGBlocks(enc)
		if err != nil {
			panic("compress: JPEG entropy roundtrip failed: " + err.Error())
		}
	}
	bytes += 4 * len(scales)
	return p.ReconstructBlocks(decoded, scales, info), bytes
}

func (p *Pipeline) s() float64 {
	if p.S == 0 {
		return sfpr.DefaultS
	}
	return p.S
}

// CodedSize returns the coded size in bytes of already-quantized blocks
// under this pipeline's coder, without materializing streams.
func (p *Pipeline) CodedSize(blocks [][64]int8) int {
	if p.UseZVC {
		n := 0
		for i := range blocks {
			n += coding.ZVCSize(blocks[i][:])
		}
		return n
	}
	if p.Adaptive {
		return len(coding.EncodeJPEGBlocksAdaptive(blocks))
	}
	return len(coding.EncodeJPEGBlocks(blocks))
}
