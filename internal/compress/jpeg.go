// Package compress composes the building blocks (sfpr, dct, quant,
// coding) into the activation-compression methods evaluated by the paper:
// the uncompressed baseline, cDMA+ (ZVC), GIST (DPR+BRC+CSR), SFPR-only,
// JPEG-BASE (SFPR+DCT+DIV+RLE) and JPEG-ACT (SFPR+DCT+SH+ZVC), together
// with the per-activation-type policy of Table II.
package compress

import (
	"jpegact/internal/coding"
	"jpegact/internal/dct"
	"jpegact/internal/parallel"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// Pipeline is one configuration of the JPEG activation pipeline:
// SFPR → 8×8 DCT → {DIV | SH} quantization → {RLE | ZVC} coding.
type Pipeline struct {
	DQT      quant.DQT
	UseShift bool // SH instead of DIV (JPEG-ACT)
	UseZVC   bool // ZVC instead of RLE (JPEG-ACT)
	// Adaptive selects per-tensor canonical Huffman tables for the RLE
	// coder (a software-only extension; hardware keeps static tables).
	Adaptive bool
	S        float64 // SFPR global scale
}

// JPEGBase returns the JPEG-BASE pipeline with the given DQT.
func JPEGBase(d quant.DQT) Pipeline {
	return Pipeline{DQT: d, UseShift: false, UseZVC: false, S: sfpr.DefaultS}
}

// JPEGAct returns the JPEG-ACT pipeline with the given DQT.
func JPEGAct(d quant.DQT) Pipeline {
	return Pipeline{DQT: d, UseShift: true, UseZVC: true, S: sfpr.DefaultS}
}

// blockGrain is the number of 8×8 blocks one parallel chunk carries
// through the DCT+quantization stage — each block is a few hundred
// float ops, so 16 blocks amortize the goroutine handoff.
const blockGrain = 16

// fusedKernels selects the fused per-block path (gather from the int8
// code plane → AAN → folded quantize, no padded plane). The padded-plane
// fallback is kept as the unfused reference; equivalence tests flip this
// to pin both paths bit-identical.
var fusedKernels = true

// QuantizeBlocks runs the pipeline through quantization, returning the
// quantized 8×8 blocks, the SFPR scales, and the pad info needed to
// reconstruct. Exposed for the DQT optimizer and entropy analyses. The
// returned block slice comes from the internal scratch pool; callers
// that are done with it can hand it back with ReleaseBlocks to spare
// the next call the allocation (holding on to it is also fine — the
// pool simply refills).
func (p *Pipeline) QuantizeBlocks(x *tensor.Tensor) ([][64]int8, []float32, tensor.PadInfo) {
	info := tensor.BlockPadInfo(x.Shape, dct.BlockSize)
	blkP := getBlocks(info.PaddedElems() / 64)
	return p.quantizeBlocks(x, *blkP)
}

// BorrowBlocks hands out an n-block slice from the scratch pool — the
// same pool QuantizeBlocks draws from — for callers that decode
// quantized blocks from a byte stream instead of producing them (the
// offload codec's coefficient path). Return it with ReleaseBlocks.
// Contents are dirty.
func BorrowBlocks(n int) [][64]int8 {
	return *getBlocks(n)
}

// ReleaseBlocks returns a block slice obtained from QuantizeBlocks to
// the scratch pool. The caller must not touch blocks afterwards.
func ReleaseBlocks(blocks [][64]int8) {
	if blocks == nil {
		return
	}
	putBlocks(&blocks)
}

// quantizeBlocks is QuantizeBlocks with an optional caller-provided
// block slice (the pooled Roundtrip path); blocks is reused when its
// capacity suffices. Blocks shard over the worker pool in contiguous
// index ranges — the software mirror of the paper's multi-CDU
// round-robin — and every block is produced by exactly one worker with
// the serial per-block op order, so the output is bit-identical at any
// worker count.
//
// Each block runs the fused CDU-style kernel: gather the 8×8 tile
// straight from the int8 SFPR codes (zero-filling the pad fringe),
// scaled float32 AAN forward DCT, quantize with the descale factors
// folded into the table. No padded plane is materialized and no
// separate quantization pass runs.
func (p *Pipeline) quantizeBlocks(x *tensor.Tensor, blocks [][64]int8) ([][64]int8, []float32, tensor.PadInfo) {
	info := tensor.BlockPadInfo(x.Shape, dct.BlockSize)
	scales := make([]float32, x.Shape.C)
	sfpr.ComputeScales(x, p.s(), scales)
	valsP := getI8(x.Elems())
	vals := *valsP
	sfpr.QuantizeInto(x, scales, vals)

	bw := info.BlockCols / 8
	nb := (info.BlockRows / 8) * bw
	if cap(blocks) >= nb {
		blocks = blocks[:nb]
	} else {
		blocks = make([][64]int8, nb)
	}
	if !fusedKernels {
		p.quantizeBlocksPadded(vals, blocks, info)
		putI8(valsP)
		return blocks, scales, info
	}
	table := p.foldedForward()
	rows := x.Shape.N * x.Shape.C * x.Shape.H
	w := x.Shape.W
	parallel.For(nb, blockGrain, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			fusedQuantizeBlock(vals, rows, w, bi/bw, bi%bw, &table, &blocks[bi])
		}
	})
	putI8(valsP)
	return blocks, scales, info
}

// quantizeBlocksPadded is the unfused fallback: spread the codes onto a
// pooled padded (NCH)×W float plane, then run the same AAN+folded block
// kernel from the plane. The pooled buffer comes back dirty, but only
// the pad fringe (right pad columns + bottom pad rows) is not
// overwritten by the spread, so only the fringe is cleared.
func (p *Pipeline) quantizeBlocksPadded(vals []int8, blocks [][64]int8, info tensor.PadInfo) {
	cols := info.BlockCols
	sh := info.Orig
	rows := sh.N * sh.C * sh.H
	w := sh.W
	paddedP := getF32(info.PaddedElems())
	padded := *paddedP
	if info.PadCols != 0 {
		for r := 0; r < rows; r++ {
			fringe := padded[r*cols+w : (r+1)*cols]
			for j := range fringe {
				fringe[j] = 0
			}
		}
	}
	if info.PadRows != 0 {
		tail := padded[rows*cols:]
		for i := range tail {
			tail[i] = 0
		}
	}
	parallel.For(rows, parallel.Grain(w, 4096), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			src := vals[r*w : (r+1)*w]
			dst := padded[r*cols : r*cols+w]
			for j, v := range src {
				dst[j] = float32(v)
			}
		}
	})

	bw := cols / 8
	table := p.foldedForward()
	parallel.For(len(blocks), blockGrain, func(lo, hi int) {
		var blk dct.Block
		for bi := lo; bi < hi; bi++ {
			by, bx := bi/bw, bi%bw
			for r := 0; r < 8; r++ {
				src := padded[(by*8+r)*cols+bx*8:]
				copy(blk[r*8:(r+1)*8], src[:8])
			}
			dct.AANForward8x8(&blk)
			quant.FoldedQuantize((*[64]float32)(&blk), &table, &blocks[bi])
		}
	})
	putF32(paddedP)
}

// ReconstructBlocks inverts QuantizeBlocks: dequantize, inverse DCT,
// clip back to the int8 SFPR code range, undo padding and SFPR scaling.
// Blocks shard over the worker pool exactly as in quantizeBlocks, and
// each block runs fused: folded dequantize → scaled AAN inverse DCT →
// clamp → scatter into the output tensor (pad fringe dropped), so the
// padded plane and the separate unpad+descale pass are gone.
func (p *Pipeline) ReconstructBlocks(blocks [][64]int8, scales []float32, info tensor.PadInfo) *tensor.Tensor {
	sh := info.Orig
	out := tensor.New(sh.N, sh.C, sh.H, sh.W)
	table := p.foldedInverse()

	// Per-plane inverse SFPR scales, hoisted out of the block loop
	// (blocks cross channel boundaries whenever H is not a multiple of 8).
	invP := getF32(sh.N * sh.C)
	invScales := *invP
	for nc := range invScales {
		if sc := scales[nc%sh.C]; sc != 0 {
			invScales[nc] = 1 / (sc * 128)
		} else {
			invScales[nc] = 0
		}
	}

	if !fusedKernels {
		p.reconstructBlocksPadded(blocks, invScales, info, out)
		putF32(invP)
		return out
	}
	bw := info.BlockCols / 8
	parallel.For(len(blocks), blockGrain, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			fusedReconstructBlock(&blocks[bi], &table, bi/bw, bi%bw, sh, invScales, out.Data)
		}
	})
	putF32(invP)
	return out
}

// reconstructBlocksPadded is the unfused fallback mirroring
// quantizeBlocksPadded: blocks land on a pooled padded plane (fully
// overwritten — no zeroing needed), then a separate pass strips the
// padding and applies the inverse SFPR scale.
func (p *Pipeline) reconstructBlocksPadded(blocks [][64]int8, invScales []float32, info tensor.PadInfo, out *tensor.Tensor) {
	cols := info.BlockCols
	paddedP := getF32(info.PaddedElems())
	padded := *paddedP
	bw := cols / 8
	table := p.foldedInverse()
	parallel.For(len(blocks), blockGrain, func(lo, hi int) {
		var blk dct.Block
		for bi := lo; bi < hi; bi++ {
			quant.FoldedDequantize(&blocks[bi], &table, (*[64]float32)(&blk))
			dct.AANInverse8x8(&blk)
			by, bx := bi/bw, bi%bw
			for r := 0; r < 8; r++ {
				dst := padded[(by*8+r)*cols+bx*8:]
				for cc := 0; cc < 8; cc++ {
					dst[cc] = clampCode(blk[r*8+cc])
				}
			}
		}
	})

	sh := info.Orig
	hw := sh.H * sh.W
	parallel.For(sh.N*sh.C, parallel.Grain(hw, 4096), func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			inv := invScales[nc]
			for row := 0; row < sh.H; row++ {
				src := padded[(nc*sh.H+row)*cols:]
				dst := out.Data[nc*hw+row*sh.W:][:sh.W]
				for j := range dst {
					dst[j] = src[j] * inv
				}
			}
		}
	})
	putF32(paddedP)
}

func clampCode(v float32) float32 {
	r := v
	if r >= 0 {
		r += 0.5
	} else {
		r -= 0.5
	}
	q := int32(r)
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return float32(q)
}

// Roundtrip compresses x through the full pipeline and returns the
// recovered activation plus the compressed byte count (coded stream +
// per-channel scales). The coded stream is actually encoded and decoded,
// so the losslessness of the coding stage is exercised on every call.
// The quantized and decoded block slices come from the scratch pools,
// and the ZVC path encodes straight from the block slice — no flat
// intermediate copy.
func (p *Pipeline) Roundtrip(x *tensor.Tensor) (*tensor.Tensor, int) {
	info := tensor.BlockPadInfo(x.Shape, dct.BlockSize)
	blkP := getBlocks(info.PaddedElems() / 64)
	blocks, scales, info := p.quantizeBlocks(x, *blkP)
	var bytes int
	var decoded [][64]int8
	var decP *[][64]int8
	if p.UseZVC {
		enc := coding.EncodeZVCBlocks(blocks)
		bytes = len(enc)
		decP = getBlocks(len(blocks))
		decoded = *decP
		if err := coding.DecodeZVCBlocksInto(decoded, enc); err != nil {
			panic("compress: ZVC roundtrip failed: " + err.Error())
		}
	} else if p.Adaptive {
		enc := coding.EncodeJPEGBlocksAdaptive(blocks)
		bytes = len(enc)
		var err error
		decoded, err = coding.DecodeJPEGBlocksAdaptive(enc)
		if err != nil {
			panic("compress: adaptive entropy roundtrip failed: " + err.Error())
		}
	} else {
		enc := coding.EncodeJPEGBlocks(blocks)
		bytes = len(enc)
		var err error
		decoded, err = coding.DecodeJPEGBlocks(enc)
		if err != nil {
			panic("compress: JPEG entropy roundtrip failed: " + err.Error())
		}
	}
	bytes += 4 * len(scales)
	out := p.ReconstructBlocks(decoded, scales, info)
	putBlocks(blkP)
	if decP != nil {
		putBlocks(decP)
	}
	return out, bytes
}

func (p *Pipeline) s() float64 {
	if p.S == 0 {
		return sfpr.DefaultS
	}
	return p.S
}

// CodedSize returns the coded size in bytes of already-quantized blocks
// under this pipeline's coder, without materializing streams.
func (p *Pipeline) CodedSize(blocks [][64]int8) int {
	if p.UseZVC {
		return coding.ZVCSizeBlocks(blocks)
	}
	if p.Adaptive {
		return len(coding.EncodeJPEGBlocksAdaptive(blocks))
	}
	return len(coding.EncodeJPEGBlocks(blocks))
}
