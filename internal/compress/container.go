package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"jpegact/internal/coding"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// Container format: a self-describing serialization of one JPEG-ACT-
// compressed activation, suitable for writing to disk or shipping over a
// network. Layout (little endian):
//
//	magic "JACT"  | version u8 | flags u8 (bit0: shift, bit1: zvc)
//	shape 4×u32   | S f32      | DQT 64×f32
//	scales u32 + n×f32
//	payload u32 + bytes (ZVC of quantized blocks, or JPEG entropy stream)
//
// Unlike Roundtrip — which simulates storage — WriteTensor/ReadTensor
// really persist only the compressed form.

// ErrBadContainer is returned for malformed container streams.
var ErrBadContainer = errors.New("compress: bad container")

var containerMagic = [4]byte{'J', 'A', 'C', 'T'}

const containerVersion = 1

// WriteTensor compresses x through the pipeline and writes the container,
// returning the payload size in bytes.
func (p *Pipeline) WriteTensor(w io.Writer, x *tensor.Tensor) (int, error) {
	blocks, scales, info := p.QuantizeBlocks(x)
	var payload []byte
	if p.UseZVC {
		payload = coding.EncodeZVCBlocks(blocks)
	} else if p.Adaptive {
		payload = coding.EncodeJPEGBlocksAdaptive(blocks)
	} else {
		payload = coding.EncodeJPEGBlocks(blocks)
	}
	ReleaseBlocks(blocks)
	_ = info // reconstructable from the shape

	if _, err := w.Write(containerMagic[:]); err != nil {
		return 0, err
	}
	flags := byte(0)
	if p.UseShift {
		flags |= 1
	}
	if p.UseZVC {
		flags |= 2
	}
	if p.Adaptive {
		flags |= 4
	}
	hdr := []interface{}{
		byte(containerVersion), flags,
		uint32(x.Shape.N), uint32(x.Shape.C), uint32(x.Shape.H), uint32(x.Shape.W),
		float32(p.s()),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	for _, e := range p.DQT.Entries {
		if err := binary.Write(w, binary.LittleEndian, float32(e)); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(scales))); err != nil {
		return 0, err
	}
	for _, s := range scales {
		if err := binary.Write(w, binary.LittleEndian, s); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(payload))); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return len(payload), nil
}

// ReadTensor parses a container and reconstructs the activation.
func ReadTensor(r io.Reader) (*tensor.Tensor, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != containerMagic {
		return nil, ErrBadContainer
	}
	var version, flags byte
	var n, c, h, w uint32
	var s float32
	for _, v := range []interface{}{&version, &flags, &n, &c, &h, &w, &s} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if version != containerVersion {
		return nil, fmt.Errorf("compress: container version %d: %w", version, ErrBadContainer)
	}
	const maxDim = 1 << 20
	if n == 0 || c == 0 || h == 0 || w == 0 || n > maxDim || c > maxDim || h > maxDim || w > maxDim {
		return nil, ErrBadContainer
	}
	// Cap total elements so a corrupt header cannot become an allocation
	// bomb (1 GiB of float32).
	if uint64(n)*uint64(c)*uint64(h)*uint64(w) > 1<<28 {
		return nil, ErrBadContainer
	}
	var d quant.DQT
	d.Name = "container"
	for i := range d.Entries {
		var e float32
		if err := binary.Read(r, binary.LittleEndian, &e); err != nil {
			return nil, err
		}
		if e <= 0 || math.IsNaN(float64(e)) {
			return nil, ErrBadContainer
		}
		d.Entries[i] = float64(e)
	}
	var nScales uint32
	if err := binary.Read(r, binary.LittleEndian, &nScales); err != nil {
		return nil, err
	}
	if nScales != c {
		return nil, ErrBadContainer
	}
	scales := make([]float32, nScales)
	for i := range scales {
		if err := binary.Read(r, binary.LittleEndian, &scales[i]); err != nil {
			return nil, err
		}
	}
	var payloadLen uint32
	if err := binary.Read(r, binary.LittleEndian, &payloadLen); err != nil {
		return nil, err
	}
	if payloadLen > 1<<30 {
		return nil, ErrBadContainer
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}

	p := Pipeline{DQT: d, UseShift: flags&1 != 0, UseZVC: flags&2 != 0,
		Adaptive: flags&4 != 0, S: float64(s)}
	shape := tensor.Shape{N: int(n), C: int(c), H: int(h), W: int(w)}
	// Rebuild the pad geometry from the shape alone.
	info := tensor.BlockPadInfo(shape, 8)
	nBlocks := info.PaddedElems() / 64

	var blocks [][64]int8
	if p.UseZVC {
		var err error
		blocks, err = coding.DecodeZVCBlocks(payload, nBlocks)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		if p.Adaptive {
			blocks, err = coding.DecodeJPEGBlocksAdaptive(payload)
		} else {
			blocks, err = coding.DecodeJPEGBlocks(payload)
		}
		if err != nil {
			return nil, err
		}
		if len(blocks) != nBlocks {
			return nil, ErrBadContainer
		}
	}
	return p.ReconstructBlocks(blocks, scales, info), nil
}
