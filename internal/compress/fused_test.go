package compress

import (
	"fmt"
	"math"
	"testing"

	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// The fused per-block path (gather from the int8 code plane → AAN →
// folded quantize, and its inverse) must be bit-identical to the unfused
// padded-plane reference: both run the same float32 op sequence per
// block, so equality is exact, not approximate. These tests flip the
// package's fusedKernels switch to pin the two paths against each other
// across DQT backends, shift settings and pad-fringe geometries.

func withUnfused(f func()) {
	fusedKernels = false
	defer func() { fusedKernels = true }()
	f()
}

func fusedTestTensor(sh tensor.Shape, seed uint64) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	x := tensor.New(sh.N, sh.C, sh.H, sh.W)
	for i := range x.Data {
		switch i % 7 {
		case 0:
			x.Data[i] = 0 // exercise ZVC-friendly zeros
		default:
			x.Data[i] = float32(r.Norm() * 3)
		}
	}
	return x
}

func fusedTestPipelines() []Pipeline {
	var ps []Pipeline
	// DIV backend over representative division tables.
	for _, q := range []int{10, 50, 90} {
		ps = append(ps, Pipeline{DQT: quant.JPEGQuality(q), S: sfpr.DefaultS})
	}
	// SH backend over every shift-log setting 2^0..2^7 (uniform tables
	// hit each 3-bit shift mode), plus a mixed table.
	for s := 0; s < 8; s++ {
		v := float64(int(1) << s)
		ps = append(ps, Pipeline{DQT: quant.Uniform(fmt.Sprintf("sh%d", s), 8, v), UseShift: true, S: sfpr.DefaultS})
	}
	ps = append(ps, Pipeline{DQT: quant.JPEGQuality(50), UseShift: true, S: sfpr.DefaultS})
	return ps
}

func fusedTestShapes() []tensor.Shape {
	return []tensor.Shape{
		{N: 1, C: 1, H: 8, W: 8},   // exactly one block
		{N: 2, C: 3, H: 16, W: 16}, // aligned, multi-plane
		{N: 1, C: 2, H: 5, W: 7},   // pad on both axes
		{N: 1, C: 1, H: 9, W: 13},  // pad, blocks cross channel rows
		{N: 3, C: 1, H: 8, W: 10},  // pad columns only
		{N: 1, C: 4, H: 3, W: 8},   // pad rows only
		{N: 1, C: 1, H: 1, W: 1},   // degenerate single element
	}
}

func quantizeBoth(t *testing.T, p *Pipeline, x *tensor.Tensor) ([][64]int8, []float32, tensor.PadInfo, [][64]int8) {
	t.Helper()
	fq, fs, info := p.QuantizeBlocks(x)
	var uq [][64]int8
	var us []float32
	withUnfused(func() {
		uq, us, _ = p.QuantizeBlocks(x)
	})
	if len(fs) != len(us) {
		t.Fatalf("scale count mismatch: %d vs %d", len(fs), len(us))
	}
	for i := range fs {
		if math.Float32bits(fs[i]) != math.Float32bits(us[i]) {
			t.Fatalf("scale %d differs: %v vs %v", i, fs[i], us[i])
		}
	}
	return fq, fs, info, uq
}

func TestFusedQuantizeBitIdenticalToUnfused(t *testing.T) {
	for _, p := range fusedTestPipelines() {
		for si, sh := range fusedTestShapes() {
			p := p
			x := fusedTestTensor(sh, uint64(100+si))
			fq, _, _, uq := quantizeBoth(t, &p, x)
			if len(fq) != len(uq) {
				t.Fatalf("%s %v: block count %d vs %d", p.DQT.Name, sh, len(fq), len(uq))
			}
			for b := range fq {
				if fq[b] != uq[b] {
					t.Fatalf("%s shift=%v %v: block %d differs\nfused   %v\nunfused %v",
						p.DQT.Name, p.UseShift, sh, b, fq[b], uq[b])
				}
			}
			ReleaseBlocks(fq)
			ReleaseBlocks(uq)
		}
	}
}

func TestFusedReconstructBitIdenticalToUnfused(t *testing.T) {
	for _, p := range fusedTestPipelines() {
		for si, sh := range fusedTestShapes() {
			p := p
			x := fusedTestTensor(sh, uint64(200+si))
			fq, fs, info, uq := quantizeBoth(t, &p, x)
			frec := p.ReconstructBlocks(fq, fs, info)
			var urec *tensor.Tensor
			withUnfused(func() {
				urec = p.ReconstructBlocks(uq, fs, info)
			})
			if frec.Shape != urec.Shape {
				t.Fatalf("%s %v: shape %v vs %v", p.DQT.Name, sh, frec.Shape, urec.Shape)
			}
			for i := range frec.Data {
				if math.Float32bits(frec.Data[i]) != math.Float32bits(urec.Data[i]) {
					t.Fatalf("%s shift=%v %v: sample %d differs: %v vs %v",
						p.DQT.Name, p.UseShift, sh, i, frec.Data[i], urec.Data[i])
				}
			}
			ReleaseBlocks(fq)
			ReleaseBlocks(uq)
		}
	}
}

// FuzzFusedBlockPath drives the fused-vs-unfused equivalence over
// arbitrary shapes (including heavy pad fringes) and data seeds.
func FuzzFusedBlockPath(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(8), uint8(8), int64(1), false)
	f.Add(uint8(2), uint8(3), uint8(5), uint8(7), int64(2), true)
	f.Add(uint8(1), uint8(2), uint8(17), uint8(9), int64(3), true)
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), int64(4), false)
	f.Fuzz(func(t *testing.T, n, c, h, w uint8, seed int64, shift bool) {
		sh := tensor.Shape{
			N: 1 + int(n%3),
			C: 1 + int(c%4),
			H: 1 + int(h%20),
			W: 1 + int(w%20),
		}
		x := fusedTestTensor(sh, uint64(seed))
		p := Pipeline{DQT: quant.JPEGQuality(50), UseShift: shift, S: sfpr.DefaultS}
		fq, fs, info, uq := quantizeBoth(t, &p, x)
		for b := range fq {
			if fq[b] != uq[b] {
				t.Fatalf("shape %v shift=%v: block %d differs", sh, shift, b)
			}
		}
		frec := p.ReconstructBlocks(fq, fs, info)
		var urec *tensor.Tensor
		withUnfused(func() {
			urec = p.ReconstructBlocks(uq, fs, info)
		})
		for i := range frec.Data {
			if math.Float32bits(frec.Data[i]) != math.Float32bits(urec.Data[i]) {
				t.Fatalf("shape %v shift=%v: sample %d differs", sh, shift, i)
			}
		}
		ReleaseBlocks(fq)
		ReleaseBlocks(uq)
	})
}
