package compress

import (
	"bytes"
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func TestContainerRoundtrip(t *testing.T) {
	r := tensor.NewRNG(1)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	for _, p := range []Pipeline{
		JPEGAct(quant.OptH()),
		JPEGBase(quant.JPEGQuality(80)),
		{DQT: quant.OptL(), Adaptive: true, S: 1.125},
	} {
		var buf bytes.Buffer
		payload, err := p.WriteTensor(&buf, x)
		if err != nil {
			t.Fatal(err)
		}
		if payload <= 0 || payload >= x.Bytes() {
			t.Fatalf("payload %d vs original %d", payload, x.Bytes())
		}
		got, err := ReadTensor(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// Must match the in-memory roundtrip exactly.
		want, _ := p.Roundtrip(x)
		if tensor.MSE(want, got) != 0 {
			t.Fatal("container reconstruction differs from Roundtrip")
		}
	}
}

func TestContainerPaddedShapes(t *testing.T) {
	r := tensor.NewRNG(2)
	x := tensor.New(1, 3, 6, 10) // needs NCH and W padding
	x.FillNormal(r, 0, 1)
	p := JPEGAct(quant.OptL())
	var buf bytes.Buffer
	if _, err := p.WriteTensor(&buf, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shape != x.Shape {
		t.Fatalf("shape %v", got.Shape)
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	r := tensor.NewRNG(3)
	x := data.ActivationTensor(r, 1, 2, 16, 16, 0.5, 1.0)
	p := JPEGAct(quant.OptH())
	var buf bytes.Buffer
	if _, err := p.WriteTensor(&buf, x); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadTensor(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadTensor(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated container accepted")
	}
	// Version bump.
	bad := append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadTensor(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version accepted")
	}
	// Shape bomb.
	bomb := append([]byte(nil), good...)
	for i := 6; i < 22; i++ {
		bomb[i] = 0xff
	}
	if _, err := ReadTensor(bytes.NewReader(bomb)); err == nil {
		t.Fatal("shape bomb accepted")
	}
}
