package compress

import (
	"jpegact/internal/coding"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// Kind classifies an activation for the policy of Table II.
type Kind int

const (
	// KindConv is a dense conv or residual-sum output.
	KindConv Kind = iota
	// KindReLUToOther is a ReLU output not consumed by a conv layer: only
	// its sign mask is needed in the backward pass, so BRC applies.
	KindReLUToOther
	// KindReLUToConv is a ReLU output consumed by a conv layer: the values
	// themselves are needed.
	KindReLUToConv
	// KindPoolDropout is a pooling or dropout output.
	KindPoolDropout
	// KindGradient is a flattened weight-gradient chunk exchanged by the
	// data-parallel trainer — signed, near-Gaussian values, unlike the
	// nonnegative post-ReLU activations the other kinds describe.
	KindGradient
)

// String names the kind as in Table II.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "conv/sum"
	case KindReLUToOther:
		return "ReLU(to other)"
	case KindReLUToConv:
		return "ReLU(to conv)"
	case KindPoolDropout:
		return "pool/dropout"
	case KindGradient:
		return "gradient"
	}
	return "unknown"
}

// Result describes one compressed activation.
type Result struct {
	// Recovered is the lossy reconstruction to be used in the backward
	// pass. It is nil when only a mask is stored (BRC).
	Recovered *tensor.Tensor
	// Mask is the BRC sign mask when Recovered is nil.
	Mask []bool
	// CompressedBytes is the offloaded footprint.
	CompressedBytes int
	// OriginalBytes is the float32 footprint.
	OriginalBytes int
}

// Ratio returns the compression ratio (original / compressed).
func (r Result) Ratio() float64 {
	if r.CompressedBytes == 0 {
		return 1
	}
	return float64(r.OriginalBytes) / float64(r.CompressedBytes)
}

// Method is one activation-compression scheme. Epoch is passed so
// piece-wise DQT schedules (optL5H) can switch tables during training.
type Method interface {
	Name() string
	Compress(x *tensor.Tensor, kind Kind, epoch int) Result
	// Lossless reports whether reconstruction is bit-exact.
	Lossless() bool
}

// ---------------------------------------------------------------------------

// Baseline stores activations uncompressed (the vDNN offload setting).
type Baseline struct{}

func (Baseline) Name() string   { return "baseline" }
func (Baseline) Lossless() bool { return true }

func (Baseline) Compress(x *tensor.Tensor, _ Kind, _ int) Result {
	return Result{Recovered: x.Clone(), CompressedBytes: x.Bytes(), OriginalBytes: x.Bytes()}
}

// ---------------------------------------------------------------------------

// CDMAPlus is the re-implemented cDMA of Rhu et al. as a DMA-side method:
// lossless ZVC over 32-bit values for sparse activations, no compression
// for dense conv/sum outputs.
type CDMAPlus struct{}

func (CDMAPlus) Name() string   { return "cDMA+" }
func (CDMAPlus) Lossless() bool { return true }

func (CDMAPlus) Compress(x *tensor.Tensor, kind Kind, _ int) Result {
	orig := x.Bytes()
	if kind == KindConv {
		return Result{Recovered: x.Clone(), CompressedBytes: orig, OriginalBytes: orig}
	}
	// ZVC over float32: one mask byte per eight values + 4B per non-zero.
	groups := (x.Elems() + 7) / 8
	nz := 0
	for _, v := range x.Data {
		if v != 0 {
			nz++
		}
	}
	return Result{Recovered: x.Clone(), CompressedBytes: groups + 4*nz, OriginalBytes: orig}
}

// ---------------------------------------------------------------------------

// GIST implements the functional behaviour of Jain et al.'s GIST: 8-bit
// DPR for dense activations, BRC for ReLU-to-other, and DPR+CSR sparse
// storage for the remaining sparse kinds.
type GIST struct {
	Format sfpr.Minifloat // DPR format; zero value means 8-bit (FP8)
}

func (g GIST) Name() string {
	if g.format().Bits() == 16 {
		return "GIST-16"
	}
	return "GIST"
}

func (GIST) Lossless() bool { return false }

func (g GIST) format() sfpr.Minifloat {
	if g.Format.ExpBits == 0 {
		return sfpr.FP8
	}
	return g.Format
}

func (g GIST) Compress(x *tensor.Tensor, kind Kind, _ int) Result {
	orig := x.Bytes()
	f := g.format()
	perVal := f.Bits() / 8
	switch kind {
	case KindReLUToOther:
		mask, err := coding.DecodeBRC(coding.EncodeBRC(x.Data), x.Elems())
		if err != nil {
			panic("compress: BRC roundtrip failed")
		}
		return Result{Mask: mask, CompressedBytes: (x.Elems() + 7) / 8, OriginalBytes: orig}
	case KindReLUToConv, KindPoolDropout:
		rec := sfpr.DPR(x, f)
		codes := sfpr.DPRInt8Codes(x, f)
		width := 256
		for len(codes)%width != 0 {
			width /= 2
		}
		// CSR stores one index byte per value regardless of DPR width.
		bytes := coding.CSRSize(codes, width) + (perVal-1)*nonzero(codes)
		return Result{Recovered: rec, CompressedBytes: bytes, OriginalBytes: orig}
	default:
		rec := sfpr.DPR(x, f)
		return Result{Recovered: rec, CompressedBytes: x.Elems() * perVal, OriginalBytes: orig}
	}
}

func nonzero(codes []int8) int {
	n := 0
	for _, v := range codes {
		if v != 0 {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------

// SFPROnly applies Scaled Fix-point Precision Reduction to every
// activation kind — the "SFPR" column of Table I (a fixed 4× ratio plus
// scale storage).
type SFPROnly struct {
	S float64 // global scale; zero means DefaultS
}

func (SFPROnly) Name() string   { return "SFPR" }
func (SFPROnly) Lossless() bool { return false }

func (m SFPROnly) Compress(x *tensor.Tensor, _ Kind, _ int) Result {
	s := m.S
	if s == 0 {
		s = sfpr.DefaultS
	}
	rec, bytes := sfpr.Roundtrip(x, s)
	return Result{Recovered: rec, CompressedBytes: bytes, OriginalBytes: x.Bytes()}
}

// ---------------------------------------------------------------------------

// JPEG is the transform-coding method: JPEG-BASE or JPEG-ACT depending on
// the pipeline configuration, with the Table II policy for non-conv kinds
// and a piece-wise DQT schedule.
type JPEG struct {
	MethodName string
	Schedule   quant.Schedule
	Act        bool    // true = JPEG-ACT back end (SH+ZVC), false = JPEG-BASE (DIV+RLE)
	S          float64 // SFPR global scale; zero means DefaultS
}

// NewJPEGBase builds the JPEG-BASE method with a fixed image DQT.
func NewJPEGBase(d quant.DQT) *JPEG {
	return &JPEG{MethodName: "JPEG-BASE/" + d.Name, Schedule: quant.Fixed(d), Act: false}
}

// NewJPEGAct builds the JPEG-ACT method with the given DQT schedule.
func NewJPEGAct(s quant.Schedule) *JPEG {
	return &JPEG{MethodName: "JPEG-ACT/" + s.Name, Schedule: s, Act: true}
}

func (j *JPEG) Name() string   { return j.MethodName }
func (j *JPEG) Lossless() bool { return false }

// jpegApplicable reports whether the 8×8 transform applies: the reshaped
// activation must be at least one block in both dimensions (NCH,W ≥ 8,8).
func jpegApplicable(sh tensor.Shape) bool {
	return sh.N*sh.C*sh.H >= 8 && sh.W >= 8
}

func (j *JPEG) pipeline(epoch int) Pipeline {
	d := *j.Schedule.For(epoch)
	p := Pipeline{DQT: d, UseShift: j.Act, UseZVC: j.Act, S: j.S}
	return p
}

func (j *JPEG) Compress(x *tensor.Tensor, kind Kind, epoch int) Result {
	orig := x.Bytes()
	s := j.S
	if s == 0 {
		s = sfpr.DefaultS
	}
	switch kind {
	case KindReLUToOther:
		mask, err := coding.DecodeBRC(coding.EncodeBRC(x.Data), x.Elems())
		if err != nil {
			panic("compress: BRC roundtrip failed")
		}
		return Result{Mask: mask, CompressedBytes: (x.Elems() + 7) / 8, OriginalBytes: orig}
	case KindReLUToConv, KindPoolDropout:
		c := sfpr.Compress(x, s)
		bytes := len(c.Values) + 4*len(c.Scales)
		if j.Act {
			// JPEG-ACT adds ZVC after SFPR for sparse kinds (Table II).
			bytes = coding.ZVCSize(c.Values) + 4*len(c.Scales)
		}
		return Result{Recovered: sfpr.Decompress(c), CompressedBytes: bytes, OriginalBytes: orig}
	default:
		if !jpegApplicable(x.Shape) {
			rec, bytes := sfpr.Roundtrip(x, s)
			return Result{Recovered: rec, CompressedBytes: bytes, OriginalBytes: orig}
		}
		p := j.pipeline(epoch)
		rec, bytes := p.Roundtrip(x)
		return Result{Recovered: rec, CompressedBytes: bytes, OriginalBytes: orig}
	}
}

// ---------------------------------------------------------------------------

// Standard returns the methods of Table I in paper order: baseline,
// cDMA+, GIST, SFPR, JPEG-BASE (jpeg80, jpeg60), JPEG-ACT (optL, optH,
// optL5H).
func Standard() []Method {
	return []Method{
		Baseline{},
		CDMAPlus{},
		GIST{},
		SFPROnly{},
		NewJPEGBase(quant.JPEGQuality(80)),
		NewJPEGBase(quant.JPEGQuality(60)),
		NewJPEGAct(quant.Fixed(quant.OptL())),
		NewJPEGAct(quant.Fixed(quant.OptH())),
		NewJPEGAct(quant.OptL5H()),
	}
}

// PolicyFor returns the Table II policy description for a method name and
// activation kind; it documents which coder the method applies where.
func PolicyFor(m Method, k Kind) string {
	switch m.(type) {
	case Baseline:
		return "none"
	case CDMAPlus:
		if k == KindConv {
			return "none"
		}
		return "ZVC"
	case GIST:
		switch k {
		case KindConv:
			return "DPR"
		case KindReLUToOther:
			return "BRC"
		default:
			return "DPR+CSR"
		}
	case SFPROnly:
		return "SFPR"
	case *JPEG:
		j := m.(*JPEG)
		switch k {
		case KindConv:
			if j.Act {
				return "SFPR+DCT+SH+ZVC"
			}
			return "SFPR+DCT+DIV+RLE"
		case KindReLUToOther:
			return "BRC"
		default:
			if j.Act {
				return "SFPR+ZVC"
			}
			return "SFPR"
		}
	case *HardwareJPEGACT:
		switch k {
		case KindConv:
			return "CDU(SFPR+DCT+SH+ZVC)"
		case KindReLUToOther:
			return "BRC"
		default:
			return "SFPR+ZVC"
		}
	case BFPMethod:
		return "BFP"
	}
	return "unknown"
}
