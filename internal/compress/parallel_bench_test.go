package compress

import (
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

// Block-pipeline micro-benchmarks backing BENCH_parallel.json: the
// quantize / reconstruct / full-roundtrip costs of the JPEG-ACT pipeline
// on a realistic dense activation (4×16×32×32 → 1024 8×8 blocks).

func benchActivation() *tensor.Tensor {
	r := tensor.NewRNG(1)
	return data.ActivationTensor(r, 4, 16, 32, 32, 0.5, 1.0)
}

func BenchmarkQuantizeBlocks(b *testing.B) {
	x := benchActivation()
	p := JPEGAct(quant.OptH())
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.QuantizeBlocks(x)
	}
}

func BenchmarkReconstructBlocks(b *testing.B) {
	x := benchActivation()
	p := JPEGAct(quant.OptH())
	blocks, scales, info := p.QuantizeBlocks(x)
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ReconstructBlocks(blocks, scales, info)
	}
}

func BenchmarkRoundtripZVC(b *testing.B) {
	x := benchActivation()
	p := JPEGAct(quant.OptH())
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Roundtrip(x)
	}
}
