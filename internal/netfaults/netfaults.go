// Package netfaults is a deterministic network chaos injector for the
// offload stack's wire path: it wraps any net.Conn (or a dialer
// producing them) and perturbs traffic with latency spikes, stalls,
// connection resets and partial writes. It is the network sibling of
// internal/faults (which corrupts the in-process DMA channel): faults
// injects payload damage below the CRC, netfaults injects *transport*
// damage below the reconnect/retry machinery — the failure class the
// deadline, replication and circuit-breaker layers exist to absorb.
//
// Determinism: every wrapped connection gets its own splitmix64 stream
// derived from the injector seed and the connection's dial index, and
// every fault decision is one draw from that stream at the I/O call it
// applies to — a pure function of (seed, conn index, call index), with
// no global RNG and no wall clock. Runs are reproducible given the
// same I/O sequences; and because every injected fault is absorbed by
// content-transparent machinery (reconnect+resend, replication,
// degraded fallback, recompute), the chaos soak test can demand
// bit-identical training weights rather than "it didn't crash" no
// matter how kernel scheduling chunks the byte stream.
//
// Server kill/restart — the fault class a conn wrapper cannot express —
// is orchestrated by the harness on top (see internal/train's chaos
// test and the CI smoke job), typically triggered at deterministic op
// counts observed through the client's Latency hook.
package netfaults

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"jpegact/internal/splitmix"
)

// ErrInjected marks every failure this package fabricates, so tests
// can tell a synthetic reset from a real one.
var ErrInjected = fmt.Errorf("netfaults: injected fault")

// Config selects fault classes and rates. All probabilities are per
// I/O operation in [0,1]; zero disables the class, so the zero Config
// is a transparent passthrough.
type Config struct {
	// Seed anchors every random stream; two injectors with the same
	// seed produce the same schedule for the same traffic.
	Seed uint64
	// PLatency is the chance an op is delayed by Latency first — a
	// slow-link spike the per-op deadline must absorb.
	PLatency float64
	Latency  time.Duration
	// PStall is the chance an op hangs for Stall — long enough to trip
	// a deadline, short enough for the test to outlive it.
	PStall float64
	Stall  time.Duration
	// PReset is the chance a write is cut: a prefix of the buffer is
	// delivered (a partial write poisoning the stream mid-frame) and
	// the connection is closed. Reads hit with PReset close outright.
	PReset float64
	// Sleep is the delay implementation (nil = time.Sleep); tests
	// install a recording clock so chaos never real-sleeps.
	Sleep func(time.Duration)
}

// Stats counts injected faults (atomic; read with Snapshot).
type Stats struct {
	Conns         atomic.Uint64
	LatencySpikes atomic.Uint64
	Stalls        atomic.Uint64
	Resets        atomic.Uint64
	PartialWrites atomic.Uint64
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	Conns         uint64 `json:"conns"`
	LatencySpikes uint64 `json:"latency_spikes"`
	Stalls        uint64 `json:"stalls"`
	Resets        uint64 `json:"resets"`
	PartialWrites uint64 `json:"partial_writes"`
}

// Injector derives per-connection fault streams from one seed.
type Injector struct {
	cfg   Config
	stats Stats
}

// New builds an injector.
func New(cfg Config) *Injector {
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Injector{cfg: cfg}
}

// Stats returns the live fault counters.
func (i *Injector) Stats() Snapshot {
	return Snapshot{
		Conns:         i.stats.Conns.Load(),
		LatencySpikes: i.stats.LatencySpikes.Load(),
		Stalls:        i.stats.Stalls.Load(),
		Resets:        i.stats.Resets.Load(),
		PartialWrites: i.stats.PartialWrites.Load(),
	}
}

// Wrap returns conn with the injector's fault schedule applied. Each
// call consumes the next connection index, so wrap order — dial order —
// fixes which stream a connection gets. Streams are splitmix64 (the
// shared internal/splitmix mixer, same one the netstore shards use).
func (i *Injector) Wrap(conn net.Conn) net.Conn {
	n := i.stats.Conns.Add(1) - 1
	return &faultConn{
		Conn: conn,
		inj:  i,
		// Offset the seed so conn 0 of seed 1 shares nothing with
		// conn 1 of seed 0.
		state: splitmix.Mix(i.cfg.Seed ^ (n+1)*splitmix.Gamma),
	}
}

// WrapDialer returns a dialer whose connections carry the fault
// schedule. The signature matches transport.Dialer structurally.
func (i *Injector) WrapDialer(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return i.Wrap(conn), nil
	}
}

// faultConn applies one deterministic fault stream to a connection.
// The mutex serializes draws so a concurrent Read/Write pair (the
// normal pattern: one goroutine writing requests, one reading
// responses) still consumes the stream in a single well-defined order
// per operation.
type faultConn struct {
	net.Conn
	inj   *Injector
	mu    sync.Mutex
	state uint64
	dead  bool
}

// next advances the conn's splitmix64 stream.
func (c *faultConn) next() uint64 {
	c.state += splitmix.Gamma
	return splitmix.Mix(c.state)
}

// chance draws one fault decision.
func (c *faultConn) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(c.next()>>11)/(1<<53) < p
}

// plan draws this op's fault plan in one locked section.
func (c *faultConn) plan() (latency, stall, reset bool, cut int, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return false, false, false, 0, true
	}
	cfg := &c.inj.cfg
	latency = c.chance(cfg.PLatency)
	stall = c.chance(cfg.PStall)
	reset = c.chance(cfg.PReset)
	if reset {
		c.dead = true
		// The delivered prefix length is itself part of the schedule.
		cut = int(c.next() & 0xffff)
	}
	return latency, stall, reset, cut, false
}

func (c *faultConn) delays(latency, stall bool) {
	if latency {
		c.inj.stats.LatencySpikes.Add(1)
		c.inj.cfg.Sleep(c.inj.cfg.Latency)
	}
	if stall {
		c.inj.stats.Stalls.Add(1)
		c.inj.cfg.Sleep(c.inj.cfg.Stall)
	}
}

func (c *faultConn) Write(b []byte) (int, error) {
	latency, stall, reset, cut, dead := c.plan()
	if dead {
		return 0, fmt.Errorf("%w: write on reset connection", ErrInjected)
	}
	c.delays(latency, stall)
	if reset {
		c.inj.stats.Resets.Add(1)
		n := 0
		if cut %= len(b) + 1; cut > 0 {
			// Deliver a prefix so the peer sees a frame cut mid-body —
			// the poisoned-stream case — rather than a clean close.
			c.inj.stats.PartialWrites.Add(1)
			n, _ = c.Conn.Write(b[:cut])
		}
		c.Conn.Close()
		return n, fmt.Errorf("%w: connection reset during write", ErrInjected)
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Read(b []byte) (int, error) {
	latency, stall, reset, _, dead := c.plan()
	if dead {
		return 0, fmt.Errorf("%w: read on reset connection", ErrInjected)
	}
	c.delays(latency, stall)
	if reset {
		c.inj.stats.Resets.Add(1)
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset during read", ErrInjected)
	}
	return c.Conn.Read(b)
}
