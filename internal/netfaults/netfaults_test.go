package netfaults

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"jpegact/internal/frame"
	"jpegact/internal/offload/netstore"
	"jpegact/internal/offload/transport"
	"jpegact/internal/tensor"
)

// memConn is an in-memory net.Conn sink recording what was written.
type memConn struct {
	net.Conn
	wrote  bytes.Buffer
	closed bool
}

func (m *memConn) Write(b []byte) (int, error) { return m.wrote.Write(b) }
func (m *memConn) Read(b []byte) (int, error)  { return 0, nil }
func (m *memConn) Close() error                { m.closed = true; return nil }

// schedule runs n writes through a fresh conn of an injector with the
// given seed and returns which ops faulted.
func schedule(seed uint64, n int) []bool {
	inj := New(Config{Seed: seed, PReset: 0.3, Sleep: func(time.Duration) {}})
	conn := inj.Wrap(&memConn{}).(*faultConn)
	out := make([]bool, n)
	buf := make([]byte, 64)
	for i := range out {
		_, err := conn.Write(buf)
		out[i] = err != nil
		if err != nil {
			// A reset kills the conn; re-wrap a fresh one to keep the
			// schedule going, mirroring a client reconnect.
			conn = inj.Wrap(&memConn{}).(*faultConn)
		}
	}
	return out
}

// TestDeterministicSchedule: same seed, same traffic — same faults.
// Different seed — a different schedule.
func TestDeterministicSchedule(t *testing.T) {
	a := schedule(7, 200)
	b := schedule(7, 200)
	c := schedule(8, 200)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical schedules — seed is dead")
	}
	hits := 0
	for _, f := range a {
		if f {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("degenerate schedule: %d/%d faults", hits, len(a))
	}
}

// TestResetDeliversPrefixThenCloses: an injected reset may hand the
// peer a prefix (the mid-frame cut) and must close the conn; later ops
// on the same conn fail with ErrInjected.
func TestResetDeliversPrefixThenCloses(t *testing.T) {
	inj := New(Config{Seed: 1, PReset: 1, Sleep: func(time.Duration) {}})
	sink := &memConn{}
	conn := inj.Wrap(sink)
	buf := make([]byte, 1024)
	n, err := conn.Write(buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n >= len(buf) {
		t.Fatalf("reset delivered the whole buffer (%d bytes)", n)
	}
	if n != sink.wrote.Len() {
		t.Fatalf("reported %d bytes, sink saw %d", n, sink.wrote.Len())
	}
	if !sink.closed {
		t.Fatal("reset did not close the underlying conn")
	}
	if _, err := conn.Write(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on dead conn: %v", err)
	}
	if _, err := conn.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read on dead conn: %v", err)
	}
	st := inj.Stats()
	if st.Resets != 1 || st.Conns != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDelaysUseInjectedClock: latency spikes and stalls go through the
// injected Sleep, and are counted.
func TestDelaysUseInjectedClock(t *testing.T) {
	var slept []time.Duration
	inj := New(Config{
		Seed: 3, PLatency: 1, Latency: 5 * time.Millisecond,
		PStall: 1, Stall: 80 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	conn := inj.Wrap(&memConn{})
	if _, err := conn.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 || slept[0] != 5*time.Millisecond || slept[1] != 80*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
	st := inj.Stats()
	if st.LatencySpikes != 1 || st.Stalls != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestZeroConfigIsTransparent: the zero config must never perturb
// anything.
func TestZeroConfigIsTransparent(t *testing.T) {
	inj := New(Config{})
	sink := &memConn{}
	conn := inj.Wrap(sink)
	for i := 0; i < 100; i++ {
		if _, err := conn.Write(make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if sink.wrote.Len() != 3200 {
		t.Fatalf("sink saw %d bytes", sink.wrote.Len())
	}
	st := inj.Stats()
	if st.Resets+st.Stalls+st.LatencySpikes+st.PartialWrites != 0 {
		t.Fatalf("zero config injected faults: %+v", st)
	}
}

// TestChaosRiddenClientStillCompletes is the package-level integration
// check: a NetClient dialing a real netstore server through heavy chaos
// must complete every op via reconnect+resend, and the frames must come
// back intact (CRC re-verified client-side).
func TestChaosRiddenClientStillCompletes(t *testing.T) {
	srv := netstore.New(netstore.Config{Shards: 4, Replicas: 2})
	ln, err := srv.Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	dial, err := transport.DialAddr("tcp:" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	inj := New(Config{Seed: 11, PReset: 0.05, PLatency: 0.1, Latency: time.Millisecond})
	var counters transport.Counters
	c := transport.NewNetClient(transport.Dialer(inj.WrapDialer(dial)), &counters)
	defer c.Close()

	f := &frame.Frame{
		Codec:   frame.CodecZVC,
		Shape:   tensor.Shape{N: 1, C: 1, H: 2, W: 2},
		Scales:  []float32{1},
		Payload: []byte{9, 8, 7, 6},
	}
	buf := frame.EncodeFrame(f)
	r := transport.Retry{Attempts: 64, OpTimeout: 2 * time.Second, Total: 30 * time.Second}
	const ops = 64
	for i := 0; i < ops; i++ {
		if _, err := c.Put(uint64(i), buf, r); err != nil {
			t.Fatalf("put %d under chaos: %v", i, err)
		}
	}
	for i := 0; i < ops; i++ {
		got, err := c.Get(uint64(i), r, false)
		if err != nil {
			t.Fatalf("get %d under chaos: %v", i, err)
		}
		if got.Payload[0] != 9 {
			t.Fatalf("frame %d corrupted through chaos: %+v", i, got)
		}
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("chaos run saw no resets — the test proved nothing")
	}
	if counters.Reconnects.Load() == 0 {
		t.Fatal("client never reconnected under resets")
	}
}
