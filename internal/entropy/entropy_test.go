package entropy

import (
	"math"
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/tensor"
)

func TestShannonBasics(t *testing.T) {
	if got := Shannon(nil); got != 0 {
		t.Fatalf("empty entropy %v", got)
	}
	if got := Shannon(make([]int8, 100)); got != 0 {
		t.Fatalf("constant entropy %v", got)
	}
	// Two equiprobable symbols -> 1 bit.
	vals := make([]int8, 100)
	for i := 50; i < 100; i++ {
		vals[i] = 1
	}
	if got := Shannon(vals); math.Abs(got-1) > 1e-12 {
		t.Fatalf("two-symbol entropy %v", got)
	}
}

func TestShannonUniformMax(t *testing.T) {
	// All 256 symbols equiprobable -> exactly 8 bits.
	vals := make([]int8, 256)
	for i := range vals {
		vals[i] = int8(i - 128)
	}
	if got := Shannon(vals); math.Abs(got-8) > 1e-12 {
		t.Fatalf("uniform entropy %v, want 8", got)
	}
}

func TestShannonIntsMatchesShannon(t *testing.T) {
	vals8 := []int8{0, 0, 1, 2, 2, 2, -5, 7}
	valsI := make([]int, len(vals8))
	for i, v := range vals8 {
		valsI[i] = int(v)
	}
	if a, b := Shannon(vals8), ShannonInts(valsI); math.Abs(a-b) > 1e-12 {
		t.Fatalf("%v vs %v", a, b)
	}
}

func TestAnalyzeCorrelatedDataGainsFromDCT(t *testing.T) {
	// The Fig. 2/6 insight: spatially correlated activations have lower
	// frequency entropy than spatial entropy; white noise does not.
	r := tensor.NewRNG(1)
	smooth := tensor.New(2, 2, 32, 32)
	for n := 0; n < 2; n++ {
		for c := 0; c < 2; c++ {
			copy(smooth.Data[(n*2+c)*1024:(n*2+c+1)*1024], data.Texture(r, 32, 32, 6))
		}
	}
	white := tensor.New(2, 2, 32, 32)
	white.FillNormal(r, 0, 1)

	as := Analyze(smooth, 1.0)
	aw := Analyze(white, 1.0)
	if as.Gain() < 1.0 {
		t.Fatalf("correlated data gain %v bits, want >= 1", as.Gain())
	}
	if aw.Gain() > 0.5 {
		t.Fatalf("white noise gain %v bits, should be ~0", aw.Gain())
	}
	if as.Gain() <= aw.Gain() {
		t.Fatalf("correlated gain %v must exceed white-noise gain %v", as.Gain(), aw.Gain())
	}
}

func TestAnalyzePerFrequencyShape(t *testing.T) {
	// For correlated data, low-frequency coefficients carry more entropy
	// than high-frequency ones (energy compaction toward DC).
	r := tensor.NewRNG(2)
	x := tensor.New(1, 4, 32, 32)
	for c := 0; c < 4; c++ {
		copy(x.Data[c*1024:(c+1)*1024], data.Texture(r, 32, 32, 6))
	}
	a := Analyze(x, 1.0)
	low := (a.PerFrequency[1] + a.PerFrequency[8] + a.PerFrequency[9]) / 3
	high := (a.PerFrequency[63] + a.PerFrequency[62] + a.PerFrequency[55]) / 3
	if low <= high {
		t.Fatalf("low-freq entropy %v should exceed high-freq %v", low, high)
	}
}

func TestAnalyzeSparseDataDoesNotGain(t *testing.T) {
	// The paper does not observe the frequency-domain advantage for
	// sparse (ReLU) activations: zeroing most values destroys the smooth
	// structure the DCT exploits.
	r := tensor.NewRNG(3)
	x := tensor.New(1, 2, 32, 32)
	x.FillNormal(r, 0, 1)
	for i := range x.Data {
		if i%2 == 0 || x.Data[i] < 0 {
			x.Data[i] = 0
		}
	}
	a := Analyze(x, 1.0)
	if a.Gain() > 0.3 {
		t.Fatalf("sparse data gain %v, expected none", a.Gain())
	}
}
