// Package entropy implements the Shannon-entropy analyses the paper uses
// to motivate transform coding of activations (Figs. 2 and 6): dense conv
// activations, like images, have lower entropy in the DCT frequency
// domain than in the spatial domain, so the frequency domain is the more
// compact representation.
package entropy

import (
	"math"

	"jpegact/internal/dct"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
)

// Shannon returns the Shannon entropy in bits/value of the int8 stream
// (Eqn. 11 with m = 8).
func Shannon(vals []int8) float64 {
	if len(vals) == 0 {
		return 0
	}
	var hist [256]int
	for _, v := range vals {
		hist[int(v)+128]++
	}
	return fromCounts(hist[:], len(vals))
}

// ShannonInts returns the Shannon entropy in bits/value of an arbitrary
// integer stream (used for DCT coefficients, which exceed int8 range).
func ShannonInts(vals []int) float64 {
	if len(vals) == 0 {
		return 0
	}
	hist := make(map[int]int, 512)
	for _, v := range vals {
		hist[v]++
	}
	total := float64(len(vals))
	var h float64
	for _, n := range hist {
		p := float64(n) / total
		h -= p * math.Log2(p)
	}
	return h
}

func fromCounts(hist []int, total int) float64 {
	t := float64(total)
	var h float64
	for _, n := range hist {
		if n == 0 {
			continue
		}
		p := float64(n) / t
		h -= p * math.Log2(p)
	}
	return h
}

// Analysis holds the spatial- and frequency-domain entropies of one
// activation tensor, plus the per-frequency breakdown used by Fig. 2.
// Both domains are quantized with the same unit step so the comparison is
// fair: the orthonormal DCT preserves energy, and any entropy drop comes
// from energy compaction, not from rescaling.
type Analysis struct {
	Spatial      float64     // bits/value before the DCT
	Frequency    float64     // bits/value after the DCT
	PerFrequency [64]float64 // entropy of each of the 64 DCT coefficients
}

// Gain returns the entropy reduction (bits/value) obtained by moving to
// the frequency domain; positive means transform coding helps.
func (a Analysis) Gain() float64 { return a.Spatial - a.Frequency }

// Analyze quantizes x to int8 with SFPR (global scale s), measures the
// spatial entropy of the codes, applies the 8×8 block DCT to the code
// plane and measures the frequency entropy at the same unit step.
func Analyze(x *tensor.Tensor, s float64) Analysis {
	c := sfpr.Compress(x, s)
	var a Analysis
	a.Spatial = Shannon(c.Values)

	// View the int8 codes as the padded 2D plane the CDU sees.
	codes := tensor.New(c.Shape.N, c.Shape.C, c.Shape.H, c.Shape.W)
	for i, v := range c.Values {
		codes.Data[i] = float32(v)
	}
	padded, info := tensor.PadForBlocks(codes, dct.BlockSize)
	cols := info.BlockCols
	nBlocksY := info.BlockRows / 8
	nBlocksX := cols / 8

	freqVals := make([]int, 0, info.PaddedElems())
	perFreq := make([][]int, 64)
	var blk dct.Block
	for by := 0; by < nBlocksY; by++ {
		for bx := 0; bx < nBlocksX; bx++ {
			for r := 0; r < 8; r++ {
				for cc := 0; cc < 8; cc++ {
					blk[r*8+cc] = padded[(by*8+r)*cols+bx*8+cc]
				}
			}
			dct.Forward8x8(&blk)
			for i := 0; i < 64; i++ {
				q := int(math.Round(float64(blk[i])))
				freqVals = append(freqVals, q)
				perFreq[i] = append(perFreq[i], q)
			}
		}
	}
	a.Frequency = ShannonInts(freqVals)
	for i := 0; i < 64; i++ {
		a.PerFrequency[i] = ShannonInts(perFreq[i])
	}
	return a
}
