// Package frame defines the self-describing binary container that every
// offloaded activation crosses the GPU↔host channel in. The paper's
// system (Fig. 7) DMAs compressed activations into CPU DRAM — a physical
// channel that sees bit flips, truncated transfers and lost buffers — so
// instead of naked byte slices the offload store ships framed payloads
// that can be validated end to end before they are trusted.
//
// Layout (little endian, 36-byte header):
//
//	off  0  magic   "JAFR"
//	off  4  version u8  (currently 1)
//	off  5  codec   u8  (CodecBRC | CodecJPEG | CodecZVC | CodecGradRaw | CodecGradQuant)
//	off  6  kind    u8  (compress.Kind of the activation)
//	off  7  flags   u8  (reserved, must be 0)
//	off  8  shape   4×u32 (N, C, H, W)
//	off 24  nScales u32
//	off 28  payload u32 (byte length)
//	off 32  crc     u32 (CRC32C over header[4:32] ++ scales ++ payload)
//	off 36  scales  nScales × f32
//	...     payload bytes
//
// DecodeFrame is panic-free on arbitrary input and returns one of the
// typed errors below; a frame that decodes re-encodes byte-identically.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"jpegact/internal/tensor"
)

// Typed decode errors. Wrapped errors always satisfy errors.Is against
// these sentinels.
var (
	// ErrBadMagic: the buffer does not start with the frame magic.
	ErrBadMagic = errors.New("frame: bad magic")
	// ErrVersion: the format version is not understood.
	ErrVersion = errors.New("frame: unsupported version")
	// ErrTruncated: the buffer ends before the declared content does.
	ErrTruncated = errors.New("frame: truncated")
	// ErrChecksum: the CRC32C over header+scales+payload does not match.
	ErrChecksum = errors.New("frame: checksum mismatch")
	// ErrHeader: a header field is out of range (bad codec, zero or
	// enormous dims, trailing bytes after the declared content).
	ErrHeader = errors.New("frame: invalid header")
)

// Codec identifies how the payload bytes are to be interpreted.
type Codec uint8

const (
	// CodecBRC: payload is a BRC sign-bit mask (1 bit/element).
	CodecBRC Codec = 1
	// CodecJPEG: payload is ZVC-coded quantized 8×8 DCT blocks (the
	// SH+ZVC dense path).
	CodecJPEG Codec = 2
	// CodecZVC: payload is ZVC-coded SFPR int8 values (sparse path).
	CodecZVC Codec = 3
	// CodecGradRaw: payload is raw little-endian float32 gradient
	// values — the lossless escape hatch the data-parallel exchange
	// defaults to, so bit-exact all-reduce holds by construction.
	CodecGradRaw Codec = 4
	// CodecGradQuant: payload is ZVC-coded int8 gradient values with a
	// single max-abs scale — the error-bounded lossy gradient path
	// (|err| ≤ scale/2 per element).
	CodecGradQuant Codec = 5
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecBRC:
		return "brc"
	case CodecJPEG:
		return "jpeg"
	case CodecZVC:
		return "zvc"
	case CodecGradRaw:
		return "grad-raw"
	case CodecGradQuant:
		return "grad-quant"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// Version is the current frame format version.
const Version = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 36

var magic = [4]byte{'J', 'A', 'F', 'R'}

// Castagnoli (CRC32C) table — the polynomial with hardware support on
// both x86 and ARM, the natural choice for a DMA-side integrity check.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sanity caps: a corrupt header must never become an allocation bomb.
const (
	maxDim     = 1 << 20
	maxElems   = 1 << 28 // 1 GiB of float32
	maxScales  = 1 << 24
	maxPayload = 1 << 30
)

// Frame is one decoded (or to-be-encoded) container.
type Frame struct {
	Codec   Codec
	Kind    uint8 // compress.Kind, carried opaquely
	Shape   tensor.Shape
	Scales  []float32
	Payload []byte
}

// EncodedSize returns the exact byte length EncodeFrame will produce.
func (f *Frame) EncodedSize() int {
	return HeaderSize + 4*len(f.Scales) + len(f.Payload)
}

// EncodeFrame serializes f, computing the CRC32C trailer-less checksum
// over header-after-magic, scales and payload.
func EncodeFrame(f *Frame) []byte {
	buf := make([]byte, f.EncodedSize())
	copy(buf[0:4], magic[:])
	buf[4] = Version
	buf[5] = byte(f.Codec)
	buf[6] = f.Kind
	buf[7] = 0
	le := binary.LittleEndian
	le.PutUint32(buf[8:], uint32(f.Shape.N))
	le.PutUint32(buf[12:], uint32(f.Shape.C))
	le.PutUint32(buf[16:], uint32(f.Shape.H))
	le.PutUint32(buf[20:], uint32(f.Shape.W))
	le.PutUint32(buf[24:], uint32(len(f.Scales)))
	le.PutUint32(buf[28:], uint32(len(f.Payload)))
	off := HeaderSize
	for _, s := range f.Scales {
		le.PutUint32(buf[off:], math.Float32bits(s))
		off += 4
	}
	copy(buf[off:], f.Payload)
	le.PutUint32(buf[32:], checksum(buf))
	return buf
}

// checksum computes the frame CRC over buf[4:32] and buf[36:].
func checksum(buf []byte) uint32 {
	c := crc32.Update(0, crcTable, buf[4:32])
	return crc32.Update(c, crcTable, buf[HeaderSize:])
}

// DecodeFrame parses and validates a frame. It never panics on arbitrary
// input; the returned Frame's Scales and Payload alias b.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] || b[3] != magic[3] {
		return nil, ErrBadMagic
	}
	if len(b) < HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes < %d-byte header", ErrTruncated, len(b), HeaderSize)
	}
	if b[4] != Version {
		return nil, fmt.Errorf("%w: version %d", ErrVersion, b[4])
	}
	codec := Codec(b[5])
	if codec < CodecBRC || codec > CodecGradQuant {
		return nil, fmt.Errorf("%w: %s", ErrHeader, codec)
	}
	if b[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved flags", ErrHeader)
	}
	le := binary.LittleEndian
	n, c := le.Uint32(b[8:]), le.Uint32(b[12:])
	h, w := le.Uint32(b[16:]), le.Uint32(b[20:])
	nScales := le.Uint32(b[24:])
	payloadLen := le.Uint32(b[28:])
	if n == 0 || c == 0 || h == 0 || w == 0 ||
		n > maxDim || c > maxDim || h > maxDim || w > maxDim ||
		uint64(n)*uint64(c)*uint64(h)*uint64(w) > maxElems {
		return nil, fmt.Errorf("%w: shape %d×%d×%d×%d", ErrHeader, n, c, h, w)
	}
	if nScales > maxScales || payloadLen > maxPayload {
		return nil, fmt.Errorf("%w: %d scales, %d payload bytes", ErrHeader, nScales, payloadLen)
	}
	want := uint64(HeaderSize) + 4*uint64(nScales) + uint64(payloadLen)
	if uint64(len(b)) < want {
		return nil, fmt.Errorf("%w: %d bytes, frame declares %d", ErrTruncated, len(b), want)
	}
	if uint64(len(b)) > want {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrHeader, uint64(len(b))-want)
	}
	if got, wantCRC := checksum(b), le.Uint32(b[32:]); got != wantCRC {
		return nil, fmt.Errorf("%w: crc32c %08x, header declares %08x", ErrChecksum, got, wantCRC)
	}
	f := &Frame{
		Codec: codec,
		Kind:  b[6],
		Shape: tensor.Shape{N: int(n), C: int(c), H: int(h), W: int(w)},
	}
	if nScales > 0 {
		f.Scales = make([]float32, nScales)
		for i := range f.Scales {
			f.Scales[i] = math.Float32frombits(le.Uint32(b[HeaderSize+4*i:]))
		}
	}
	f.Payload = b[HeaderSize+4*int(nScales):]
	return f, nil
}
