package frame

import (
	"errors"
	"testing"

	"jpegact/internal/tensor"
)

func sample() *Frame {
	return &Frame{
		Codec:   CodecJPEG,
		Kind:    2,
		Shape:   tensor.Shape{N: 1, C: 3, H: 8, W: 8},
		Scales:  []float32{0.5, 1.25, -3},
		Payload: []byte{1, 2, 3, 0, 0, 7},
	}
}

func TestRoundtrip(t *testing.T) {
	for _, f := range []*Frame{
		sample(),
		{Codec: CodecBRC, Kind: 1, Shape: tensor.Shape{N: 1, C: 1, H: 1, W: 1}, Payload: []byte{0xff}},
		{Codec: CodecZVC, Kind: 3, Shape: tensor.Shape{N: 2, C: 2, H: 4, W: 4}, Scales: []float32{1, 2}},
	} {
		buf := EncodeFrame(f)
		if len(buf) != f.EncodedSize() {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), f.EncodedSize())
		}
		got, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Codec != f.Codec || got.Kind != f.Kind || got.Shape != f.Shape {
			t.Fatalf("header mismatch: %+v vs %+v", got, f)
		}
		if len(got.Scales) != len(f.Scales) || len(got.Payload) != len(f.Payload) {
			t.Fatalf("content length mismatch")
		}
		for i := range f.Scales {
			if got.Scales[i] != f.Scales[i] {
				t.Fatalf("scale %d: %v vs %v", i, got.Scales[i], f.Scales[i])
			}
		}
		for i := range f.Payload {
			if got.Payload[i] != f.Payload[i] {
				t.Fatalf("payload byte %d differs", i)
			}
		}
		// A decodable frame must re-encode byte-identically.
		re := EncodeFrame(got)
		if string(re) != string(buf) {
			t.Fatal("re-encode not byte-identical")
		}
	}
}

func TestTypedErrors(t *testing.T) {
	good := EncodeFrame(sample())

	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:3], ErrTruncated},
		{"bad magic", append([]byte("XXXX"), good[4:]...), ErrBadMagic},
		{"header only half", good[:HeaderSize-10], ErrTruncated},
		{"cut payload", good[:len(good)-2], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), good...), 0), ErrHeader},
	}
	// Version byte.
	v := append([]byte(nil), good...)
	v[4] = 99
	cases = append(cases, struct {
		name string
		buf  []byte
		want error
	}{"version", v, ErrVersion})
	// Bad codec (CRC recomputed would still fail first? codec checked
	// before CRC, so flip codec only).
	c := append([]byte(nil), good...)
	c[5] = 0
	cases = append(cases, struct {
		name string
		buf  []byte
		want error
	}{"codec", c, ErrHeader})
	// Flip one payload bit: checksum.
	p := append([]byte(nil), good...)
	p[len(p)-1] ^= 0x10
	cases = append(cases, struct {
		name string
		buf  []byte
		want error
	}{"payload flip", p, ErrChecksum})
	// Flip one scale bit: checksum.
	s := append([]byte(nil), good...)
	s[HeaderSize+1] ^= 0x01
	cases = append(cases, struct {
		name string
		buf  []byte
		want error
	}{"scale flip", s, ErrChecksum})
	// Flip a shape bit (covered by the header CRC).
	sh := append([]byte(nil), good...)
	sh[9] ^= 0x40
	cases = append(cases, struct {
		name string
		buf  []byte
		want error
	}{"shape flip", sh, ErrChecksum})

	for _, tc := range cases {
		if _, err := DecodeFrame(tc.buf); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestAllocationCaps(t *testing.T) {
	// A frame declaring an enormous shape or payload must be rejected
	// from the header alone, never allocated.
	f := sample()
	buf := EncodeFrame(f)
	huge := append([]byte(nil), buf...)
	// payloadLen = 1<<31 at offset 28.
	huge[28], huge[29], huge[30], huge[31] = 0, 0, 0, 0x80
	if _, err := DecodeFrame(huge); !errors.Is(err, ErrHeader) {
		t.Fatalf("oversized payload: %v", err)
	}
	zero := append([]byte(nil), buf...)
	zero[8], zero[9], zero[10], zero[11] = 0, 0, 0, 0 // N = 0
	if _, err := DecodeFrame(zero); !errors.Is(err, ErrHeader) {
		t.Fatalf("zero dim: %v", err)
	}
}
