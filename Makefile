# Tier-1 check: must stay green on every commit.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-2 check: full suite under the race detector. The parallel layer
# (internal/parallel and everything built on it) must pass this clean;
# run it before merging any change that touches a parallel.For body.
.PHONY: race
race:
	go test -race ./...

# Micro-benchmarks of the parallel hot paths; scripts/bench.sh wraps
# this and records results into BENCH_parallel.json.
.PHONY: bench
bench:
	go test -run '^$$' -bench 'BenchmarkGemm|BenchmarkQuantizeBlocks|BenchmarkReconstructBlocks|BenchmarkRoundtripZVC|BenchmarkCompressJPEGACT|BenchmarkTrainStep' -benchmem ./...

.PHONY: fmt
fmt:
	gofmt -l -w .
