# Tier-1 check: must stay green on every commit.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-2 check: full suite under the race detector. The parallel layer
# (internal/parallel and everything built on it) must pass this clean;
# run it before merging any change that touches a parallel.For body.
.PHONY: race
race:
	go test -race ./...

# Everything CI runs, in CI's order. Mirrors .github/workflows/ci.yml so
# the gate is reproducible locally with one command.
.PHONY: ci
ci:
	gofmt -l . | (! grep .) || (echo "gofmt: files need formatting" && exit 1)
	go vet ./...
	go build ./...
	go test ./...
	go test -race ./internal/offload/... ./internal/train ./internal/parallel ./internal/nn ./internal/freqdomain ./internal/netfaults

# Micro-benchmarks of the parallel hot paths; scripts/bench.sh wraps
# this and records results into BENCH_parallel.json.
.PHONY: bench
bench:
	go test -run '^$$' -bench 'BenchmarkGemm|BenchmarkQuantizeBlocks|BenchmarkReconstructBlocks|BenchmarkRoundtripZVC|BenchmarkCompressJPEGACT|BenchmarkTrainStep' -benchmem ./...

# Sync-vs-async offload wall-clock over the simulated DMA channel;
# writes BENCH_offload.json at the repo root and fails if the async
# trajectory diverges from sync.
.PHONY: bench-offload
bench-offload:
	go run ./cmd/offloadbench > BENCH_offload.json
	@grep -E 'speedup|trajectory' BENCH_offload.json

# Data-parallel replica scaling sweep (K=1,2,4 over the gradient
# exchange); writes BENCH_dataparallel.json at the repo root and fails
# if any replica count diverges from K=1's weights bit-for-bit.
.PHONY: bench-dp
bench-dp:
	go run ./cmd/offloadbench -dp -dp-replicas 1,2,4 > BENCH_dataparallel.json
	@grep -E 'replicas|speedup|weights_match' BENCH_dataparallel.json

# Fuzz sweep: every decoder fuzz target for 10s each. Go runs one fuzz
# target per invocation, so loop over the discovered names in each fuzzed
# package. The decoders facing untrusted bytes — the offload container
# (FuzzDecodeFrame), the coefficient-plane restore
# (FuzzDecodeCoefficients), the activation-store request path
# (FuzzNetstoreRequest) and the client's response parser
# (FuzzWireResponse) — must survive arbitrary input without a panic.
FUZZTIME ?= 10s
FUZZPKGS = ./internal/coding/ ./internal/offload/codec/ ./internal/offload/netstore/ ./internal/offload/transport/
.PHONY: fuzz
fuzz:
	@for pkg in $(FUZZPKGS); do \
		for t in $$(go test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "== $$pkg $$t"; \
			go test -run '^$$' -fuzz "^$$t$$" -fuzztime=$(FUZZTIME) $$pkg || exit 1; \
		done; \
	done

.PHONY: fmt
fmt:
	gofmt -l -w .
