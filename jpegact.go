// Package jpegact is a Go reproduction of "JPEG-ACT: Accelerating Deep
// Learning via Transform-based Lossy Compression" (Evans, Liu, Aamodt —
// ISCA 2020): lossy activation-offload compression for CNN training built
// from SFPR fixed-point reduction, an 8×8 LLM DCT, shift quantization
// with CNN-optimized quantization tables, and zero-value coding.
//
// This root package is the public API. It re-exports the building blocks
// and offers one-call entry points:
//
//   - compression methods: Baseline, CDMAPlus, GIST, SFPR, JPEGBase,
//     JPEGACT (Table I of the paper);
//   - CompressActivation / the Method interface for compressing NCHW
//     activation tensors by activation kind (Table II policy built in);
//   - TrainClassifier / TrainSuperRes to train the bundled mini networks
//     under any compression method;
//   - TrainClassifierOffloaded, the real host-memory offload path with a
//     framed CRC-checked channel, fault injection (NewFaultInjector) and
//     fail/retry/recompute corruption recovery;
//   - OptimizeDQT, the §IV quantization-table optimizer;
//   - SimulateOffload and the gpusim schemes for performance studies;
//   - RunExperiment to regenerate any table or figure of the paper.
//
// The heavy lifting lives in internal/ packages; see DESIGN.md for the
// full system inventory.
package jpegact

import (
	"io"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/dqtopt"
	"jpegact/internal/experiments"
	"jpegact/internal/faults"
	"jpegact/internal/frame"
	"jpegact/internal/gpusim"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload"
	"jpegact/internal/offload/netstore"
	"jpegact/internal/offload/transport"
	"jpegact/internal/parallel"
	"jpegact/internal/quant"
	"jpegact/internal/sfpr"
	"jpegact/internal/tensor"
	"jpegact/internal/train"
)

// SetParallelWorkers sets the worker count used by every parallel hot
// path (GEMM, im2col, the block compression pipeline, ZVC coding) and
// returns the previous value. n <= 0 restores the default: the
// JPEGACT_WORKERS environment variable, else GOMAXPROCS. Compressed
// output and training results are bit-identical at any worker count.
func SetParallelWorkers(n int) int { return parallel.SetWorkers(n) }

// ParallelWorkers returns the current parallel worker count.
func ParallelWorkers() int { return parallel.Workers() }

// Tensor is a dense float32 NCHW activation tensor.
type Tensor = tensor.Tensor

// Shape is a tensor's NCHW dimensions.
type Shape = tensor.Shape

// NewTensor allocates a zero tensor.
func NewTensor(n, c, h, w int) *Tensor { return tensor.New(n, c, h, w) }

// FromSlice wraps a float32 slice as an NCHW tensor (no copy).
func FromSlice(vals []float32, n, c, h, w int) *Tensor {
	return tensor.FromSlice(vals, n, c, h, w)
}

// Kind classifies an activation for the Table II compression policy.
type Kind = compress.Kind

// Activation kinds.
const (
	KindConv        = compress.KindConv
	KindReLUToOther = compress.KindReLUToOther
	KindReLUToConv  = compress.KindReLUToConv
	KindPoolDropout = compress.KindPoolDropout
)

// Method is an activation-compression scheme.
type Method = compress.Method

// Result is the outcome of compressing one activation.
type Result = compress.Result

// DQT is an 8×8 Discrete Quantization Table.
type DQT = quant.DQT

// Schedule is a per-epoch DQT selection (e.g. the piece-wise optL5H).
type Schedule = quant.Schedule

// DefaultS is the SFPR global scaling factor selected by the paper.
const DefaultS = sfpr.DefaultS

// Baseline returns the uncompressed (vDNN-style) method.
func Baseline() Method { return compress.Baseline{} }

// CDMAPlus returns the DMA-side ZVC method (lossless).
func CDMAPlus() Method { return compress.CDMAPlus{} }

// GIST returns the DPR+BRC+CSR method of Jain et al.
func GIST() Method { return compress.GIST{} }

// SFPR returns Scaled Fix-point Precision Reduction alone (4×).
func SFPR() Method { return compress.SFPROnly{} }

// JPEGBase returns JPEG-BASE with a stock image DQT at the given quality
// (e.g. 80 or 60).
func JPEGBase(quality int) Method {
	return compress.NewJPEGBase(quant.JPEGQuality(quality))
}

// JPEGACT returns the shipped JPEG-ACT configuration: the SH+ZVC back end
// with the piece-wise optL5H DQT schedule.
func JPEGACT() Method { return compress.NewJPEGAct(quant.OptL5H()) }

// JPEGACTWith returns JPEG-ACT with a custom DQT schedule.
func JPEGACTWith(s Schedule) Method { return compress.NewJPEGAct(s) }

// GIST16 returns the 16-bit DPR GIST variant (half the compression,
// much lower quantization error).
func GIST16() Method { return compress.GIST16() }

// BFP returns the block-floating-point baseline with the given mantissa
// width (0 = 10 bits).
func BFP(manBits uint) Method { return compress.BFPMethod{ManBits: manBits} }

// HardwareJPEGACT returns JPEG-ACT backed by the cycle-counted CDU
// datapath model (fixed-point DCT, collector/splitter packets) instead of
// the float functional pipeline — for verifying hardware-equivalent
// training behaviour and accounting CDU cycles.
func HardwareJPEGACT(s Schedule, nCDU int) Method {
	return compress.NewHardwareJPEGACT(s, nCDU)
}

// OptL and OptH return the optimized low/high-compression DQTs; FixedDQT
// and OptL5H build schedules from them.
func OptL() DQT                { return quant.OptL() }
func OptH() DQT                { return quant.OptH() }
func FixedDQT(d DQT) Schedule  { return quant.Fixed(d) }
func OptL5H() Schedule         { return quant.OptL5H() }
func JPEGQualityDQT(q int) DQT { return quant.JPEGQuality(q) }

// Methods returns the Table I method set in paper order.
func Methods() []Method { return compress.Standard() }

// CompressActivation compresses x as an activation of the given kind at
// the given training epoch, returning the lossy recovered tensor (or BRC
// mask) and the byte accounting.
func CompressActivation(m Method, x *Tensor, kind Kind, epoch int) Result {
	return m.Compress(x, kind, epoch)
}

// TrainConfig configures a training run (see internal/train.Config).
type TrainConfig = train.Config

// TrainReport summarizes a training run under compression.
type TrainReport = train.Report

// ModelScale sizes the bundled mini networks.
type ModelScale = models.Scale

// TrainClassifier trains a mini network by name ("VGG", "ResNet18",
// "ResNet50", "ResNet101", "WRN", "MobileNet") on the synthetic
// classification set.
func TrainClassifier(model string, sc ModelScale, cfg TrainConfig, seed uint64) TrainReport {
	m, ds := buildClassifier(model, sc, seed)
	return train.Classifier(m, ds, cfg)
}

func buildClassifier(model string, sc ModelScale, seed uint64) (*models.Model, *data.Classification) {
	rng := tensor.NewRNG(seed)
	var m *models.Model
	switch model {
	case "VGG":
		m = models.VGG(sc, 4, rng)
	case "ResNet18":
		m = models.ResNet18(sc, 4, rng)
	case "ResNet50":
		m = models.ResNet50(sc, 4, rng)
	case "ResNet101":
		m = models.ResNet101(sc, 4, rng)
	case "WRN":
		m = models.WRN(sc, 4, rng)
	case "MobileNet":
		m = models.MobileNet(sc, 4, rng)
	default:
		panic("jpegact: unknown model " + model)
	}
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 4, Channels: 3, H: m.H, W: m.W, Noise: 0.4, Seed: seed,
	})
	return m, ds
}

// TrainSuperRes trains the mini VDSR on synthetic super-resolution pairs.
func TrainSuperRes(sc ModelScale, cfg TrainConfig, seed uint64) TrainReport {
	m := models.VDSR(sc, tensor.NewRNG(seed))
	ds := data.NewSuperRes(m.H, m.W, seed)
	return train.SuperResolution(m, ds, cfg)
}

// --- Fault-tolerant offload channel -----------------------------------
//
// The offload store ships activations across the GPU↔host channel in a
// framed, CRC32C-checked container and recovers from corruption per a
// configurable policy; see "Fault model & recovery" in DESIGN.md.

// OffloadStore is the host-memory activation store (internal/offload).
type OffloadStore = offload.Store

// NewOffloadStore builds a store using the given DQT for its JPEG-ACT
// compression pipeline.
func NewOffloadStore(dqt DQT) *OffloadStore { return offload.NewStore(dqt) }

// OffloadStats are the store's offload/restore/corruption counters.
type OffloadStats = offload.Stats

// OffloadChannel is the byte path activations cross between GPU and
// host. Any {Send, Recv} pair satisfies it; a FaultInjector is one.
type OffloadChannel = offload.Channel

// RecoveryPolicy selects the store's response to a corrupted frame.
type RecoveryPolicy = offload.RecoveryPolicy

// Recovery policies: fail with a typed error naming the corrupted ref,
// re-read the channel with backoff, or replay the forward pass from the
// intact batch input (gradient-checkpointing style).
const (
	RecoverFail      = offload.PolicyFail
	RecoverRetry     = offload.PolicyRetry
	RecoverRecompute = offload.PolicyRecompute
)

// Typed frame-validation errors surfaced (wrapped) by OffloadStore
// restores; match with errors.Is.
var (
	ErrFrameChecksum  = frame.ErrChecksum
	ErrFrameTruncated = frame.ErrTruncated
	ErrFrameBadMagic  = frame.ErrBadMagic
	ErrFrameVersion   = frame.ErrVersion
)

// ErrOffloadDropped is the typed error for a transfer that yielded no
// bytes at all (a lost DMA), distinct from truncation or corruption;
// match with errors.Is.
var ErrOffloadDropped = offload.ErrDropped

// ErrStoreUnavailable is the typed verdict for a wire operation whose
// whole reconnect+resend schedule failed at the connection level — the
// activation store is dead or unreachable. The store's circuit breaker
// counts exactly these before degrading to local offload; match with
// errors.Is.
var ErrStoreUnavailable = offload.ErrStoreUnavailable

// StoreBreakerConfig tunes the circuit breaker guarding a networked
// activation store (see OffloadTrainOptions.Breaker): consecutive
// whole-op wire failures trip it and offloads degrade to an in-process
// fallback holding the identical encoded bytes, so training continues
// bit-identically through a dead store. The zero value is an enabled
// breaker with default thresholds.
type StoreBreakerConfig = offload.BreakerConfig

// OffloadTransport is the pluggable byte-path backend interface the
// store is written against: the in-process channel backend, or a wire
// client talking to a shared activation-store server.
type OffloadTransport = transport.Transport

// StoreDialer opens one connection to a networked activation store; it
// is the fault-injection seam of the network transport.
type StoreDialer = transport.Dialer

// DialActivationStore builds a dialer for "unix:/path" or
// "tcp:host:port" (a bare host:port defaults to TCP).
func DialActivationStore(addr string) (StoreDialer, error) {
	return transport.DialAddr(addr)
}

// NewStoreClient builds a wire-protocol transport backend over dial.
// Assign it to an OffloadStore's Transport field, passing the store's
// Counters() so network faults land in the same OffloadStats.
func NewStoreClient(dial StoreDialer, c *transport.Counters) *transport.NetClient {
	return transport.NewNetClient(dial, c)
}

// ActivationStoreServer is the sharded networked activation store
// (internal/offload/netstore); run it standalone with cmd/actstore.
type ActivationStoreServer = netstore.Server

// ActivationStoreConfig sizes an ActivationStoreServer.
type ActivationStoreConfig = netstore.Config

// NewActivationStore builds a server; Listen/Serve it on a unix socket
// or TCP address and point clients at it with NewStoreClient or the
// OffloadTrainOptions.StoreAddr field.
func NewActivationStore(cfg ActivationStoreConfig) *ActivationStoreServer {
	return netstore.New(cfg)
}

// OffloadEngine is the async scheduler layer over an OffloadStore: it
// pipelines compression and channel transfers against compute, commits
// frames in submission order (deterministic fault patterns) and
// prefetches restores in reverse-offload order.
type OffloadEngine = offload.Engine

// OffloadEngineConfig configures the scheduler (async on/off, encode
// workers, restore lookahead, in-flight byte budget).
type OffloadEngineConfig = offload.EngineConfig

// OffloadEngineStats counts scheduler-level events (prefetch hits/waits,
// in-flight high-water mark).
type OffloadEngineStats = offload.EngineStats

// NewOffloadEngine wraps a store in a scheduler.
func NewOffloadEngine(s *OffloadStore, cfg OffloadEngineConfig) *OffloadEngine {
	return offload.NewEngine(s, cfg)
}

// ActivationHooks connect a network to an offload scheduler: OnSave
// fires when a saved activation becomes emission-safe during forward,
// OnNeed just before backward reads it.
type ActivationHooks = nn.Hooks

// SetActivationHooks installs hooks on every container of a bundled
// model's network (nil detaches).
func SetActivationHooks(l nn.Layer, h *ActivationHooks) { nn.SetHooks(l, h) }

// FaultConfig configures a deterministic channel fault injector.
type FaultConfig = faults.Config

// FaultInjector corrupts offload transfers with seeded bit flips,
// truncations and drops; it satisfies OffloadChannel.
type FaultInjector = faults.Injector

// NewFaultInjector builds a deterministic injector from cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.New(cfg) }

// OffloadTrainOptions configures TrainClassifierOffloaded: the DQT, the
// (possibly fault-injected) channel, and the recovery policy.
type OffloadTrainOptions = train.OffloadOptions

// TrainClassifierOffloaded trains a mini network by name with real
// host-memory offload: every saved activation crosses oc.Channel as a
// framed byte buffer between forward and backward, and corrupted frames
// are recovered per oc.Policy. The returned OffloadStats hold the fault
// counters; a non-nil error means a corruption survived the policy.
func TrainClassifierOffloaded(model string, sc ModelScale, cfg TrainConfig, oc OffloadTrainOptions, seed uint64) (TrainReport, OffloadStats, error) {
	m, ds := buildClassifier(model, sc, seed)
	return train.ClassifierOffloaded(m, ds, cfg, oc)
}

// DataParallelOptions configures TrainClassifierDataParallel: replica
// count, microbatches per step, the gradient codec, and (optionally) the
// networked store carrying the exchange.
type DataParallelOptions = train.DPOptions

// Gradient-exchange codecs for DataParallelOptions.GradCodec.
const (
	GradCodecRaw   = frame.CodecGradRaw   // lossless float32 (default)
	GradCodecQuant = frame.CodecGradQuant // int8 max-abs quantization + ZVC
)

// TransportSnapshot is a point-in-time copy of the transport counters,
// including the gradient-exchange rows (grad_puts/grad_gets/bytes_grad).
type TransportSnapshot = transport.Snapshot

// TrainClassifierDataParallel trains a mini network by name with K
// replica workers exchanging per-microbatch weight gradients through the
// activation-store transport (in-process, or the shared networked store
// when dp.StoreDial is set). The step semantics are replica-invariant:
// for a fixed dp.Microbatches the final weights are bit-identical for
// any dp.Replicas, including over the wire and under connection chaos.
func TrainClassifierDataParallel(model string, sc ModelScale, cfg TrainConfig, dp DataParallelOptions, seed uint64) (TrainReport, TransportSnapshot, error) {
	// One dataset feeds the central microbatch draw; every replica gets
	// its own identically-seeded model instance.
	_, ds := buildClassifier(model, sc, seed)
	newModel := func() *models.Model {
		m, _ := buildClassifier(model, sc, seed)
		return m
	}
	return train.ClassifierDataParallel(newModel, ds, cfg, dp)
}

// DQTOptimizerConfig configures OptimizeDQT (see internal/dqtopt.Config).
type DQTOptimizerConfig = dqtopt.Config

// OptimizeDQT runs the §IV optimization from seed on sample activations.
func OptimizeDQT(seed DQT, samples []*Tensor, cfg DQTOptimizerConfig) (DQT, []dqtopt.Point) {
	r := dqtopt.Optimize(seed, samples, cfg)
	return r.DQT, r.Trace
}

// PlatformConfig is the simulated GPU platform.
type PlatformConfig = gpusim.Config

// TitanV returns the paper's platform with n CDUs.
func TitanV(nCDU int) PlatformConfig { return gpusim.TitanV(nCDU) }

// OffloadScheme is a performance-model offload method.
type OffloadScheme = gpusim.Scheme

// Offload schemes for SimulateOffload.
func SchemeVDNN() OffloadScheme { return gpusim.VDNN() }
func SchemeCDMA() OffloadScheme { return gpusim.CDMAPlus() }
func SchemeGIST() OffloadScheme { return gpusim.GIST() }
func SchemeSFPR() OffloadScheme { return gpusim.SFPROnly() }
func SchemeJPEGACT() OffloadScheme {
	return gpusim.JPEGAct(gpusim.JPEGActDefaultRatios())
}

// SimulateOffload returns the speedup of the scheme over vDNN on the
// named CNR microbenchmark (see gpusim.Workloads for names).
func SimulateOffload(workload string, s OffloadScheme, cfg PlatformConfig) (float64, bool) {
	for _, w := range gpusim.Workloads() {
		if w.Name == workload {
			return gpusim.Relative(w, s, cfg), true
		}
	}
	return 0, false
}

// WorkloadNames lists the available microbenchmarks.
func WorkloadNames() []string {
	var out []string
	for _, w := range gpusim.Workloads() {
		out = append(out, w.Name)
	}
	return out
}

// ExperimentOptions controls experiment scale.
type ExperimentOptions = experiments.Options

// ExperimentResult is one regenerated table/figure.
type ExperimentResult = experiments.Result

// RunExperiment regenerates one of the paper's tables or figures by id
// (fig1b, fig2, fig6, fig10, fig16, fig17, fig18, fig19, fig20, fig21,
// table1..table5).
func RunExperiment(id string, o ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, o)
}

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string { return experiments.IDs() }

// WriteSyntheticCIFAR writes n synthetic samples in the CIFAR-10 binary
// record format (label byte + 3072 channel-major pixels), a drop-in
// data_batch file for offline pipelines.
func WriteSyntheticCIFAR(w io.Writer, n, classes int, seed uint64) error {
	return data.WriteSyntheticCIFAR(w, n, classes, seed)
}

// LoadCIFAR reads CIFAR-10 binary records (real or synthetic) into an
// NCHW tensor and label slice.
func LoadCIFAR(r io.Reader) (*Tensor, []int, error) { return data.LoadCIFAR(r) }

// WriteCompressed serializes x through the JPEG-ACT pipeline with the
// given DQT into the self-describing JACT container format; read it back
// with ReadCompressed. Unlike CompressActivation, only the compressed
// bytes cross the writer.
func WriteCompressed(w io.Writer, x *Tensor, d DQT) (int, error) {
	p := compress.JPEGAct(d)
	return p.WriteTensor(w, x)
}

// ReadCompressed reconstructs a tensor from a JACT container.
func ReadCompressed(r io.Reader) (*Tensor, error) { return compress.ReadTensor(r) }
