// host_offload demonstrates the real offload path: after the forward
// pass every saved activation is serialized into compressed host-memory
// buffers and its float tensor is freed; activations are restored one at
// a time, in reverse order, as the backward pass needs them — so the
// live float footprint between forward and backward is just the
// compressed bytes, exactly the paper's system-level saving.
//
// It then runs the same step through the async engine: save hooks
// stream each activation to the encode workers the moment the forward
// pass no longer needs it, frames are committed to the channel in
// submission order, and a reverse-order prefetcher stages restores
// ahead of the backward pass — the offload–compute overlap of Fig. 1a,
// with bit-identical results.
package main

import (
	"fmt"

	"jpegact"
	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/models"
	"jpegact/internal/nn"
	"jpegact/internal/offload"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func main() {
	m := models.ResNet50(models.Scale{Width: 8, Blocks: 2}, 4, tensor.NewRNG(1))
	ds := data.NewClassification(data.ClassificationConfig{
		Classes: 4, Channels: 3, H: 32, W: 32, Seed: 2,
	})
	x, labels := ds.Batch(8)

	out := m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
	loss, grad := nn.SoftmaxCrossEntropy(out.T, labels)
	fmt.Printf("forward done, loss %.3f\n", loss)

	store := offload.NewStore(quant.OptL())
	orig, comp, err := store.OffloadAll(m.Net.SavedRefs())
	if err != nil {
		panic(err)
	}
	fmt.Printf("offloaded %d activations: %.2f MB float -> %.2f MB compressed host bytes (%.1fx)\n",
		store.Stored(), float64(orig)/1e6, float64(comp)/1e6, float64(orig)/float64(comp))
	fmt.Println("between forward and backward, only the compressed bytes are live")

	// Restore in reverse order — the backward prefetch of Fig. 1a.
	refs := m.Net.SavedRefs()
	seen := map[*nn.ActRef]bool{}
	restored := 0
	for i := len(refs) - 1; i >= 0; i-- {
		ref := refs[i]
		if seen[ref] || ref.Mask != nil {
			continue
		}
		seen[ref] = true
		if err := store.Restore(ref); err != nil {
			panic(err)
		}
		restored++
	}
	if err := store.RestoreAll(); err != nil { // drain BRC bookkeeping
		panic(err)
	}
	fmt.Printf("restored %d activations for the backward pass\n", restored)

	m.Net.Backward(grad)
	fmt.Println("backward complete on the restored (lossy) activations")

	// --- The same step, pipelined ------------------------------------
	// The engine overlaps compression and channel traffic with compute:
	// OnSave streams activations out during the forward pass, OnNeed
	// consumes prefetched restores during backward.
	asyncStore := offload.NewStore(quant.OptL())
	eng := offload.NewEngine(asyncStore, offload.EngineConfig{
		Async: true, Prefetch: 4, InFlightBytes: 1 << 20,
	})
	defer eng.Close()

	eng.BeginStep()
	nn.SetHooks(m.Net, &nn.Hooks{OnSave: eng.Offload})
	out = m.Net.Forward(&nn.ActRef{Kind: compress.KindConv, T: x}, true)
	loss, grad = nn.SoftmaxCrossEntropy(out.T, labels)
	aorig, acomp, err := eng.EndForward(m.Net.SavedRefs())
	if err != nil {
		panic(err)
	}
	if err := eng.PrepareBackward(); err != nil {
		panic(err)
	}
	nn.SetHooks(m.Net, &nn.Hooks{OnNeed: func(ref *nn.ActRef) {
		if err := eng.Restore(ref); err != nil {
			panic(err)
		}
	}})
	m.Net.Backward(grad)
	nn.SetHooks(m.Net, nil)
	if err := eng.EndStep(); err != nil {
		panic(err)
	}
	es := eng.Stats()
	fmt.Printf("async engine: %.2f MB -> %.2f MB streamed during forward, loss %.3f\n",
		float64(aorig)/1e6, float64(acomp)/1e6, loss)
	fmt.Printf("prefetcher served %d restores staged ahead, %d after a wait (in-flight peak %d B)\n",
		es.PrefetchHits, es.PrefetchWaits, es.MaxInFlight)

	// The same compression, driven through the one-call facade:
	res := jpegact.CompressActivation(jpegact.JPEGACT(), x, jpegact.KindConv, 0)
	fmt.Printf("(facade check: input batch compresses %.1fx)\n", res.Ratio())
}
