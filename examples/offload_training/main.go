// offload_training trains the mini ResNet50 twice — uncompressed and
// under JPEG-ACT/optL5H — and compares convergence, reproducing the
// paper's headline claim (Table I): near-baseline accuracy at a much
// smaller offloaded footprint.
package main

import (
	"fmt"

	"jpegact"
)

func main() {
	sc := jpegact.ModelScale{Width: 8, Blocks: 1}
	const seed = 42

	run := func(m jpegact.Method) jpegact.TrainReport {
		return jpegact.TrainClassifier("ResNet50", sc, jpegact.TrainConfig{
			Method: m, Epochs: 6, BatchesPerEpoch: 8, BatchSize: 8,
			LR: 0.05, MeasureError: true,
		}, seed)
	}

	fmt.Println("training mini ResNet50, baseline vs JPEG-ACT/optL5H")
	base := run(jpegact.Baseline())
	act := run(jpegact.JPEGACT())

	fmt.Printf("%-6s %-18s %-18s\n", "epoch", "baseline acc", "JPEG-ACT acc (ratio)")
	for i := range base.Epochs {
		fmt.Printf("%-6d %-18.3f %.3f (%.1fx)\n",
			i, base.Epochs[i].Score, act.Epochs[i].Score, act.Epochs[i].CompressionRatio)
	}
	fmt.Printf("\nbest accuracy: baseline %.3f, JPEG-ACT %.3f (Δ %+.3f)\n",
		base.BestScore, act.BestScore, act.BestScore-base.BestScore)
	fmt.Printf("JPEG-ACT offload footprint: %.1fx smaller; diverged=%v\n",
		act.FinalRatio, act.Diverged)

	fmt.Println("\noffloaded bytes by activation kind (final epoch):")
	for _, fe := range act.Footprint {
		fmt.Printf("  %-16s %8d B -> %8d B\n", fe.Kind.String(), fe.OriginalBytes, fe.CompressedBytes)
	}
}
