// dqt_optimization runs the §IV quantization-table optimization end to
// end: evaluate the stock image tables on activation-like data, optimize
// from a uniform seed at two α settings (the optL/optH trade-off), and
// show the resulting rate/distortion points.
package main

import (
	"fmt"

	"jpegact"
	"jpegact/internal/data"
	"jpegact/internal/dqtopt"
	"jpegact/internal/tensor"
)

func main() {
	// Sample activations (the paper uses 240 examples from a briefly
	// trained generator network; the flat-spectrum generator stands in).
	r := tensor.NewRNG(11)
	samples := make([]*jpegact.Tensor, 4)
	for i := range samples {
		samples[i] = data.ActivationTensor(r, 1, 8, 32, 32, 0.5, 1.0)
	}

	fmt.Println("reference points (image DQTs):")
	for _, q := range []int{60, 80} {
		d := jpegact.JPEGQualityDQT(q)
		p := dqtopt.Evaluate(d, samples, 0, jpegact.DefaultS)
		fmt.Printf("  %-8s entropy %.3f bits/value, L2 %.2e\n", d.Name, p.Entropy, p.L2)
	}

	fmt.Println("\noptimizing from the jpeg80 seed (O = (1-α)λ₁H + αλ₂L2):")
	for _, alpha := range []float64{0.005, 0.025} {
		d, trace := jpegact.OptimizeDQT(
			jpegact.JPEGQualityDQT(80), samples,
			jpegact.DQTOptimizerConfig{Alpha: alpha, Iters: 6, Grouped: true},
		)
		first, last := trace[0], trace[len(trace)-1]
		fmt.Printf("  α=%.3f: objective %.2f → %.2f, entropy %.3f, L2 %.2e\n",
			alpha, first.O, last.O, last.Entropy, last.L2)
		_ = d
	}

	fmt.Println("\nhigher α weights error more → lower-error/lower-compression")
	fmt.Println("tables (optL); lower α yields the high-compression optH point.")
	fmt.Println("The DC entry stays pinned to 8 to protect batch-norm statistics.")
}
