// entropy_analysis reproduces the insight that motivates JPEG-ACT
// (Figs. 2 and 6): dense conv activations, like images, carry less
// Shannon entropy in the DCT frequency domain than in the spatial domain
// — and sparse ReLU outputs do not.
package main

import (
	"fmt"

	"jpegact"
	"jpegact/internal/data"
	"jpegact/internal/entropy"
	"jpegact/internal/tensor"
)

func main() {
	r := tensor.NewRNG(3)

	analyze := func(name string, x *jpegact.Tensor) {
		a := entropy.Analyze(x, 1.125)
		fmt.Printf("%-22s spatial %.2f bits  frequency %.2f bits  gain %+.2f\n",
			name, a.Spatial, a.Frequency, a.Gain())
	}

	// Natural-image-like smooth texture: big win for the DCT.
	img := tensor.New(2, 3, 32, 32)
	for i := 0; i < 6; i++ {
		copy(img.Data[i*1024:(i+1)*1024], data.Texture(r, 32, 32, 6))
	}
	analyze("image (smooth)", img)

	// Dense activation with a flatter spectrum: smaller but real win.
	act := data.ActivationTensor(r, 2, 3, 32, 32, 0.5, 1.0)
	analyze("dense conv activation", act)

	// Sparse ReLU output: the transform stops paying off.
	relu := act.Clone()
	for i, v := range relu.Data {
		if v < 0 || i%2 == 0 {
			relu.Data[i] = 0
		}
	}
	analyze("sparse ReLU output", relu)

	// White noise: no spatial correlation, no gain.
	noise := tensor.New(2, 3, 32, 32)
	noise.FillNormal(r, 0, 1)
	analyze("white noise", noise)

	fmt.Println("\npositive gain = the frequency domain is the more compact")
	fmt.Println("representation, so transform coding (JPEG-ACT) beats plain")
	fmt.Println("precision reduction there; ZVC handles the sparse kinds.")
}
