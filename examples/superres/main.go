// superres trains the mini VDSR super-resolution network under several
// compression methods and compares PSNR — the Div2k row of Table I. VDSR
// is the stress case: all its activations have few channels and large
// spatial dimensions.
package main

import (
	"fmt"

	"jpegact"
)

func main() {
	sc := jpegact.ModelScale{Width: 8, Blocks: 2, H: 16, W: 16}
	const seed = 7

	methods := []jpegact.Method{
		jpegact.Baseline(),
		jpegact.GIST(),
		jpegact.SFPR(),
		jpegact.JPEGACT(),
	}
	fmt.Println("mini VDSR super-resolution under activation compression")
	fmt.Printf("%-18s %-10s %-8s %s\n", "method", "PSNR (dB)", "ratio", "diverged")
	var basePSNR float64
	for i, m := range methods {
		rep := jpegact.TrainSuperRes(sc, jpegact.TrainConfig{
			Method: m, Epochs: 5, BatchesPerEpoch: 6, BatchSize: 4, LR: 0.01,
		}, seed)
		if i == 0 {
			basePSNR = rep.BestScore
		}
		fmt.Printf("%-18s %-10.2f %-8.2f %v\n",
			m.Name(), rep.BestScore, rep.FinalRatio, rep.Diverged)
	}
	fmt.Printf("\n(baseline PSNR %.2f dB; lossy methods should stay within ~1 dB)\n", basePSNR)
}
