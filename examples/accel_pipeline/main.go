// accel_pipeline drives the cycle-counted hardware model of the JPEG-ACT
// CDU end to end: SFPR → fixed-point DCT → SH → ZVC → collector packets →
// splitter → decompression, printing throughput, compression ratio and
// the reconstruction error, plus the CDU-count scaling of Fig. 21.
package main

import (
	"fmt"
	"math"

	"jpegact/internal/accel"
	"jpegact/internal/data"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func main() {
	// 256 blocks of activation-like data in one SFPR channel.
	r := tensor.NewRNG(9)
	const nBlocks = 256
	plane := data.ActivationLike(r, 8, 8*nBlocks, 0.5, 1.0)
	blocks := make([][64]float32, nBlocks)
	var maxAbs float32
	for b := 0; b < nBlocks; b++ {
		for row := 0; row < 8; row++ {
			copy(blocks[b][row*8:(row+1)*8], plane[row*8*nBlocks+b*8:row*8*nBlocks+b*8+8])
		}
		for _, v := range blocks[b] {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
	}
	sc := float32(1.125) / maxAbs // the SFPR channel scale, S = 1.125

	fmt.Println("JPEG-ACT CDU datapath on", nBlocks, "8×8 blocks")
	fmt.Printf("%-6s %-8s %-8s %-10s %-14s %s\n",
		"CDUs", "cycles", "ratio", "packets", "B/cycle in", "worst err")
	for _, n := range []int{1, 2, 4, 8} {
		a := accel.New(n, quant.OptH())
		s := a.Compress(blocks, sc)
		rec, _ := a.Decompress(s, sc)
		var worst float64
		for b := range blocks {
			for i := range blocks[b] {
				if d := math.Abs(float64(rec[b][i] - blocks[b][i])); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("%-6d %-8d %-8.2f %-10d %-14.1f %.4f\n",
			n, s.Cycles, s.Ratio(), len(s.Packets), s.ThroughputBytesPerCycle(), worst)
	}
	fmt.Println("\none 256 B block per 8 cycles per CDU (32 B/cycle ingest);")
	fmt.Println("the collector drains one block per cycle, so it never binds")
	fmt.Println("for ≤ 8 CDUs — exactly the §III-G throughput argument.")
}
