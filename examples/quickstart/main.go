// Quickstart: compress one activation tensor with every method of the
// paper and print the ratio and reconstruction error — the 30-second tour
// of the public API.
package main

import (
	"fmt"
	"math"

	"jpegact"
)

func main() {
	// Build a dense conv activation: 4 images × 16 channels × 32×32, with
	// the flat-spectrum statistics real CNN activations have (Fig. 2).
	x := jpegact.NewTensor(4, 16, 32, 32)
	fillActivationLike(x)

	fmt.Println("compressing a", x.Shape.String(), "conv activation")
	fmt.Printf("%-18s %-8s %-12s %s\n", "method", "ratio", "L2 error", "lossless")
	for _, m := range jpegact.Methods() {
		res := jpegact.CompressActivation(m, x, jpegact.KindConv, 10)
		errStr := "-"
		if res.Recovered != nil {
			errStr = fmt.Sprintf("%.3e", l2(x, res.Recovered))
		}
		fmt.Printf("%-18s %-8.2f %-12s %v\n", m.Name(), res.Ratio(), errStr, m.Lossless())
	}

	// The same method applies different coders per activation kind
	// (Table II): a ReLU output not feeding a conv needs only its sign.
	relu := x.Clone()
	for i, v := range relu.Data {
		if v < 0 {
			relu.Data[i] = 0
		}
	}
	res := jpegact.CompressActivation(jpegact.JPEGACT(), relu, jpegact.KindReLUToOther, 0)
	fmt.Printf("\nReLU(to other) under JPEG-ACT: BRC mask, %.0fx\n", res.Ratio())
}

// fillActivationLike synthesizes per-block DCT coefficients and inverts
// them — a stand-in for a real conv output (see internal/data for the
// full generator).
func fillActivationLike(x *jpegact.Tensor) {
	seed := uint64(1)
	next := func() float64 {
		seed ^= seed >> 12
		seed ^= seed << 25
		seed ^= seed >> 27
		return float64(seed*0x2545F4914F6CDD1D>>11) / float64(uint64(1)<<53)
	}
	for i := range x.Data {
		// Sum of a smooth component and noise gives a falling-but-flat
		// spectrum, close enough for the quickstart.
		u1, u2 := next(), next()
		for u1 == 0 {
			u1 = next()
		}
		x.Data[i] = float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
		if i > 0 {
			x.Data[i] = 0.6*x.Data[i-1] + 0.8*x.Data[i]
		}
	}
}

func l2(a, b *jpegact.Tensor) float64 {
	var sum float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		sum += d * d
	}
	return math.Sqrt(sum) / float64(len(a.Data))
}
