// fault_injection trains a mini ResNet across a fault-injected offload
// channel and shows each recovery policy in action: the injector flips
// bits and drops transfers between the GPU and host memory, the framed
// container's CRC32C detects every corruption, and the store either
// fails with a typed error naming the ref, absorbs transient faults by
// re-reading the channel, or replays the forward pass and re-offloads —
// with a final trajectory bit-identical to a fault-free run.
package main

import (
	"errors"
	"fmt"

	"jpegact"
)

func main() {
	sc := jpegact.ModelScale{Width: 6, Blocks: 1}
	cfg := jpegact.TrainConfig{Epochs: 2, BatchesPerEpoch: 3, BatchSize: 4, LR: 0.05}

	// Baseline: the same run over a clean channel.
	clean, cleanStats, err := jpegact.TrainClassifierOffloaded("ResNet18", sc, cfg,
		jpegact.OffloadTrainOptions{DQT: jpegact.OptL()}, 42)
	check(err)
	fmt.Printf("clean channel:      final loss %.6f, %d activations offloaded, %d B verified\n",
		finalLoss(clean), cleanStats.Offloaded, cleanStats.BytesVerified)

	// PolicyFail: a forced corruption surfaces as a typed checksum error.
	inj := jpegact.NewFaultInjector(jpegact.FaultConfig{Seed: 7})
	inj.ForceNextRecv(1)
	_, _, err = jpegact.TrainClassifierOffloaded("ResNet18", sc, cfg,
		jpegact.OffloadTrainOptions{
			DQT: jpegact.OptL(), Channel: inj, Policy: jpegact.RecoverFail,
		}, 42)
	fmt.Printf("fail policy:        %v (is ErrFrameChecksum: %v)\n",
		err, errors.Is(err, jpegact.ErrFrameChecksum))

	// PolicyRetry: a transient fault is absorbed by re-reading the channel.
	inj = jpegact.NewFaultInjector(jpegact.FaultConfig{Seed: 7})
	inj.ForceNextRecv(1)
	rep, stats, err := jpegact.TrainClassifierOffloaded("ResNet18", sc, cfg,
		jpegact.OffloadTrainOptions{
			DQT: jpegact.OptL(), Channel: inj, Policy: jpegact.RecoverRetry, MaxRetries: 3,
		}, 42)
	check(err)
	fmt.Printf("retry policy:       final loss %.6f after %d corrupted / %d retried\n",
		finalLoss(rep), stats.Corrupted, stats.Retried)

	// PolicyRecompute: random bit flips and dropped buffers trigger
	// forward replays; the trajectory still matches the clean run exactly.
	inj = jpegact.NewFaultInjector(jpegact.FaultConfig{
		Seed: 81, BitFlipPerByte: 1e-5, DropRate: 0.02,
	})
	rep, stats, err = jpegact.TrainClassifierOffloaded("ResNet18", sc, cfg,
		jpegact.OffloadTrainOptions{
			DQT: jpegact.OptL(), Channel: inj, Policy: jpegact.RecoverRecompute,
			MaxRecompute: 16,
		}, 42)
	check(err)
	is := inj.Stats()
	fmt.Printf("recompute policy:   final loss %.6f after %d flips + %d drops (%d recomputes)\n",
		finalLoss(rep), is.Flips, is.Drops, stats.Recomputed)
	if finalLoss(rep) == finalLoss(clean) {
		fmt.Println("faulty run is bit-identical to the fault-free run — recovery is invisible to training")
	} else {
		fmt.Println("BUG: faulty trajectory diverged from the clean run")
	}

	// Async + faults: the pipelined engine discovers the corruption in
	// its prefetcher mid-backward, recovers, and still lands on the
	// clean trajectory.
	inj = jpegact.NewFaultInjector(jpegact.FaultConfig{
		Seed: 81, BitFlipPerByte: 1e-5, DropRate: 0.02,
	})
	rep, stats, err = jpegact.TrainClassifierOffloaded("ResNet18", sc, cfg,
		jpegact.OffloadTrainOptions{
			DQT: jpegact.OptL(), Channel: inj, Policy: jpegact.RecoverRecompute,
			MaxRecompute: 16, Async: true,
		}, 42)
	check(err)
	fmt.Printf("async + recompute:  final loss %.6f (%d recomputes, %d drops counted)\n",
		finalLoss(rep), stats.Recomputed, stats.Dropped)
	if finalLoss(rep) == finalLoss(clean) {
		fmt.Println("asynchronous recovery is also invisible — sync and async trajectories agree")
	} else {
		fmt.Println("BUG: async faulty trajectory diverged from the clean run")
	}
}

func finalLoss(r jpegact.TrainReport) float64 {
	return r.Epochs[len(r.Epochs)-1].Loss
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
