package jpegact

// One benchmark per table and figure of the paper's evaluation: each
// regenerates its experiment at reduced (Quick) scale through the same
// runner cmd/actbench uses, so `go test -bench=.` exercises every
// reproduction path. Full-scale numbers are committed in EXPERIMENTS.md
// and regenerated with `actbench -all`.

import (
	"testing"

	"jpegact/internal/compress"
	"jpegact/internal/data"
	"jpegact/internal/experiments"
	"jpegact/internal/quant"
	"jpegact/internal/tensor"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := experiments.Options{Quick: true, Seed: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig1b(b *testing.B)      { benchExperiment(b, "fig1b") }
func BenchmarkFig2(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig6(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig16(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)      { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)      { benchExperiment(b, "fig21") }
func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkMemory(b *testing.B)     { benchExperiment(b, "memory") }
func BenchmarkCapacity(b *testing.B)   { benchExperiment(b, "capacity") }
func BenchmarkDivergence(b *testing.B) { benchExperiment(b, "divergence") }
func BenchmarkTTA(b *testing.B)        { benchExperiment(b, "tta") }

// Ablation benches for the design choices DESIGN.md calls out: the SH
// quantizer vs exact DIV, ZVC vs the JPEG entropy coder, and the
// hardware datapath vs the functional pipeline.
func BenchmarkAblationDIVRLE(b *testing.B) { benchPipeline(b, false, false) }
func BenchmarkAblationSHRLE(b *testing.B)  { benchPipeline(b, true, false) }
func BenchmarkAblationDIVZVC(b *testing.B) { benchPipeline(b, false, true) }
func BenchmarkAblationSHZVC(b *testing.B)  { benchPipeline(b, true, true) }

func benchPipeline(b *testing.B, shift, zvc bool) {
	r := tensor.NewRNG(4)
	x := data.ActivationTensor(r, 4, 16, 32, 32, 0.5, 1.0)
	p := compress.Pipeline{DQT: quant.OptH(), UseShift: shift, UseZVC: zvc}
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	var bytes int
	for i := 0; i < b.N; i++ {
		_, bytes = p.Roundtrip(x)
	}
	b.ReportMetric(float64(x.Bytes())/float64(bytes), "ratio")
}

func BenchmarkAblationHardwareVsFunctional(b *testing.B) {
	r := tensor.NewRNG(5)
	x := data.ActivationTensor(r, 2, 8, 32, 32, 0.5, 1.0)
	m := HardwareJPEGACT(OptL5H(), 4)
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressActivation(m, x, KindConv, 10)
	}
}

// Micro-benchmarks of the core compression path: throughput of the full
// JPEG-ACT method on a realistic dense activation (the per-activation
// cost the functional simulation pays each training step).
func BenchmarkCompressJPEGACT(b *testing.B) {
	r := tensor.NewRNG(1)
	x := data.ActivationTensor(r, 4, 16, 32, 32, 0.5, 1.0)
	m := JPEGACT()
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressActivation(m, x, KindConv, 10)
	}
}

func BenchmarkCompressGIST(b *testing.B) {
	r := tensor.NewRNG(2)
	x := data.ActivationTensor(r, 4, 16, 32, 32, 0.5, 1.0)
	m := GIST()
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressActivation(m, x, KindConv, 0)
	}
}

func BenchmarkCompressSFPR(b *testing.B) {
	r := tensor.NewRNG(3)
	x := data.ActivationTensor(r, 4, 16, 32, 32, 0.5, 1.0)
	m := SFPR()
	b.SetBytes(int64(x.Bytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressActivation(m, x, KindConv, 0)
	}
}

// BenchmarkTrainStep measures one full compressed training step of the
// mini ResNet50 — the end-to-end functional-simulation unit of work.
func BenchmarkTrainStep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TrainClassifier("ResNet50", ModelScale{Width: 8, Blocks: 1}, TrainConfig{
			Method: JPEGACT(), Epochs: 1, BatchesPerEpoch: 1, BatchSize: 8,
		}, 42)
	}
}
