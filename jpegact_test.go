package jpegact

import (
	"bytes"
	"testing"

	"jpegact/internal/data"
	"jpegact/internal/tensor"
)

func TestFacadeMethods(t *testing.T) {
	ms := Methods()
	if len(ms) != 9 {
		t.Fatalf("methods %d", len(ms))
	}
	if JPEGACT().Name() != "JPEG-ACT/optL5H" {
		t.Fatalf("JPEGACT name %q", JPEGACT().Name())
	}
	if JPEGBase(80).Name() != "JPEG-BASE/jpeg80" {
		t.Fatalf("JPEGBase name %q", JPEGBase(80).Name())
	}
}

func TestFacadeCompressActivation(t *testing.T) {
	r := tensor.NewRNG(1)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	res := CompressActivation(JPEGACT(), x, KindConv, 10)
	if res.Ratio() < 3 {
		t.Fatalf("ratio %v", res.Ratio())
	}
	if res.Recovered == nil || res.Recovered.Shape != x.Shape {
		t.Fatal("recovery broken")
	}
	mask := CompressActivation(JPEGACT(), x, KindReLUToOther, 0)
	if mask.Mask == nil {
		t.Fatal("BRC path broken")
	}
}

func TestFacadeTensorHelpers(t *testing.T) {
	x := NewTensor(1, 2, 3, 4)
	if x.Elems() != 24 {
		t.Fatalf("elems %d", x.Elems())
	}
	y := FromSlice(make([]float32, 24), 1, 2, 3, 4)
	if y.Shape != (Shape{N: 1, C: 2, H: 3, W: 4}) {
		t.Fatalf("shape %v", y.Shape)
	}
	if DefaultS != 1.125 {
		t.Fatalf("DefaultS %v", DefaultS)
	}
}

func TestFacadeTraining(t *testing.T) {
	rep := TrainClassifier("ResNet18", ModelScale{Width: 6, Blocks: 1},
		TrainConfig{Method: JPEGACT(), Epochs: 1, BatchesPerEpoch: 2, BatchSize: 4}, 3)
	if rep.ModelName != "ResNet18" || len(rep.Epochs) != 1 {
		t.Fatalf("report %+v", rep)
	}
	sr := TrainSuperRes(ModelScale{Width: 4, Blocks: 1},
		TrainConfig{Method: SFPR(), Epochs: 1, BatchesPerEpoch: 2, BatchSize: 2, LR: 0.01}, 4)
	if sr.ModelName != "VDSR" {
		t.Fatalf("superres report %+v", sr)
	}
}

func TestFacadeOffloadedTraining(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 9, BitFlipPerByte: 1e-5})
	inj.ForceNextRecv(1)
	rep, stats, err := TrainClassifierOffloaded("ResNet18", ModelScale{Width: 6, Blocks: 1},
		TrainConfig{Epochs: 1, BatchesPerEpoch: 2, BatchSize: 4},
		OffloadTrainOptions{DQT: OptL(), Channel: inj, Policy: RecoverRecompute}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 1 {
		t.Fatalf("report %+v", rep)
	}
	if stats.Corrupted == 0 || stats.Recomputed == 0 {
		t.Fatalf("forced fault not recovered: %+v", stats)
	}
	if stats.Offloaded == 0 || stats.BytesVerified == 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestFacadeUnknownModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainClassifier("AlexNet", ModelScale{}, TrainConfig{}, 1)
}

func TestFacadeOptimizeDQT(t *testing.T) {
	r := tensor.NewRNG(5)
	samples := []*Tensor{data.ActivationTensor(r, 1, 2, 16, 16, 0.5, 1)}
	d, trace := OptimizeDQT(JPEGQualityDQT(80), samples,
		DQTOptimizerConfig{Alpha: 0.01, Iters: 2, Grouped: true})
	if d.Entries[0] != 8 {
		t.Fatal("DC not pinned")
	}
	if len(trace) != 3 {
		t.Fatalf("trace %d", len(trace))
	}
}

func TestFacadeSimulator(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 7 {
		t.Fatalf("workloads %v", names)
	}
	sp, ok := SimulateOffload("ResNet50/IN", SchemeJPEGACT(), TitanV(4))
	if !ok || sp < 2 {
		t.Fatalf("speedup %v ok=%v", sp, ok)
	}
	if _, ok := SimulateOffload("nope", SchemeVDNN(), TitanV(4)); ok {
		t.Fatal("unknown workload must not resolve")
	}
	for _, s := range []OffloadScheme{SchemeCDMA(), SchemeGIST(), SchemeSFPR()} {
		if sp, ok := SimulateOffload("VGG", s, TitanV(4)); !ok || sp <= 0 {
			t.Fatalf("scheme %s failed", s.Name)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 20 {
		t.Fatalf("experiment ids %v", ids)
	}
	r, err := RunExperiment("table5", ExperimentOptions{Quick: true})
	if err != nil || len(r.Rows) != 4 {
		t.Fatalf("table5: %v %+v", err, r)
	}
	if _, err := RunExperiment("bogus", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFacadeSchedules(t *testing.T) {
	s := OptL5H()
	if s.For(0).Name != "optL" || s.For(9).Name != "optH" {
		t.Fatal("optL5H schedule broken")
	}
	fx := FixedDQT(OptH())
	if fx.For(100).Name != "optH" {
		t.Fatal("fixed schedule broken")
	}
	if OptL().Entries[0] != 8 || OptH().Entries[0] != 8 {
		t.Fatal("optimized DQTs must pin DC")
	}
}

func TestFacadeExtraMethods(t *testing.T) {
	r := tensor.NewRNG(20)
	x := data.ActivationTensor(r, 2, 4, 16, 16, 0.5, 1.0)
	if GIST16().Name() != "GIST-16" {
		t.Fatal("GIST16 name")
	}
	res := BFP(10).Compress(x, KindConv, 0)
	if res.Ratio() < 3 {
		t.Fatalf("BFP ratio %v", res.Ratio())
	}
	hres := HardwareJPEGACT(OptL5H(), 4).Compress(x, KindConv, 10)
	if hres.Recovered == nil || hres.Ratio() < 3 {
		t.Fatalf("hardware method broken: %v", hres.Ratio())
	}
}

func TestFacadeMobileNet(t *testing.T) {
	rep := TrainClassifier("MobileNet", ModelScale{Width: 6, Blocks: 1},
		TrainConfig{Method: SFPR(), Epochs: 1, BatchesPerEpoch: 2, BatchSize: 4}, 8)
	if rep.ModelName != "MobileNet" || rep.Diverged {
		t.Fatalf("MobileNet training: %+v", rep)
	}
}

func TestFacadeContainer(t *testing.T) {
	r := tensor.NewRNG(21)
	x := data.ActivationTensor(r, 1, 4, 16, 16, 0.5, 1.0)
	var buf bytes.Buffer
	payload, err := WriteCompressed(&buf, x, OptH())
	if err != nil || payload <= 0 {
		t.Fatalf("write: %v %d", err, payload)
	}
	got, err := ReadCompressed(&buf)
	if err != nil || got.Shape != x.Shape {
		t.Fatalf("read: %v", err)
	}
}
