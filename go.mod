module jpegact

go 1.22
